// Unit coverage of the serialization primitives: Writer/Reader round trips,
// CRC-32 stability, and per-type op/model payload fidelity (the whole-
// pipeline fidelity and rejection corpora live in their own slow suites).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "models/gbdt.hpp"
#include "models/linear.hpp"
#include "models/mlp.hpp"
#include "ops/encoders.hpp"
#include "ops/scale.hpp"
#include "ops/string_ops.hpp"
#include "ops/tfidf.hpp"
#include "serialize/buffer.hpp"
#include "serialize/model_registry.hpp"
#include "serialize/op_registry.hpp"

namespace willump {
namespace {

TEST(WriterReader, PrimitivesRoundTripLittleEndian) {
  serialize::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1);
  w.f64(3.141592653589793);
  w.str("hello");
  w.doubles(std::vector<double>{1.5, -2.5});
  w.sizes(std::vector<std::size_t>{7, 0, 9});
  w.bools({true, false, true});

  serialize::Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.doubles(), (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(r.sizes(), (std::vector<std::size_t>{7, 0, 9}));
  EXPECT_EQ(r.bools(), (std::vector<bool>{true, false, true}));
  EXPECT_TRUE(r.at_end());
}

TEST(WriterReader, DoubleBitPatternsAreExact) {
  // NaN payloads, infinities, signed zero, denormals: bit-for-bit.
  const std::vector<double> specials = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max()};
  serialize::Writer w;
  w.doubles(specials);
  serialize::Reader r(w.bytes());
  const auto out = r.doubles();
  ASSERT_EQ(out.size(), specials.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
              std::bit_cast<std::uint64_t>(specials[i]));
  }
}

TEST(WriterReader, ReadsPastEndThrowTyped) {
  serialize::Writer w;
  w.u32(1);
  serialize::Reader r(w.bytes());
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), serialize::SerializeError);
}

TEST(Crc32, MatchesKnownVectorAndDetectsFlips) {
  // The canonical zlib test vector.
  const std::string s = "123456789";
  std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(serialize::crc32(bytes), 0xCBF43926u);
  bytes[4] ^= 0x10;
  EXPECT_NE(serialize::crc32(bytes), 0xCBF43926u);
}

TEST(OpRegistry, StatefulOpsRoundTripTheirParameters) {
  const serialize::OpLoadContext ctx;

  ops::OneHotHashOp oh(128, 99, "brands");
  serialize::Writer w;
  serialize::save_op(w, oh);
  serialize::Reader r(w.bytes());
  const auto loaded = serialize::load_op(r, ctx);
  const auto* oh2 = dynamic_cast<const ops::OneHotHashOp*>(loaded.get());
  ASSERT_NE(oh2, nullptr);
  EXPECT_EQ(oh2->name(), "brands");
  for (std::int64_t k : {0, 7, -5, 123456}) {
    EXPECT_EQ(oh2->bucket_of(k), oh.bucket_of(k));
  }
}

TEST(OpRegistry, TfIdfTransformsIdenticallyAfterReload) {
  ops::TfIdfConfig cfg;
  cfg.min_df = 1;
  cfg.ngrams = {1, 2};
  const data::StringColumn corpus{"red green blue", "green blue", "blue moon",
                                  "red red moon"};
  const auto model = ops::TfIdfModel::fit(corpus, cfg);
  serialize::Writer w;
  model.save(w);
  serialize::Reader r(w.bytes());
  const auto loaded = ops::TfIdfModel::load(r);
  EXPECT_EQ(loaded.vocabulary_size(), model.vocabulary_size());
  for (const auto& doc : corpus) {
    EXPECT_EQ(loaded.transform_one(doc), model.transform_one(doc));
  }
  EXPECT_EQ(loaded.transform_one("moon unseen red"),
            model.transform_one("moon unseen red"));
}

TEST(ModelRegistry, EveryFamilyPredictsBitIdenticallyAfterReload) {
  data::DenseMatrix x(80, 4);
  std::vector<double> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    x(i, 0) = std::sin(static_cast<double>(i));
    x(i, 1) = static_cast<double>(i % 5);
    x(i, 2) = static_cast<double>(i) * 0.01;
    x(i, 3) = (i % 3 == 0) ? 1.0 : 0.0;
    y[i] = x(i, 0) + x(i, 3) > 0.5 ? 1.0 : 0.0;
  }
  const data::FeatureMatrix fx(x);

  std::vector<std::shared_ptr<models::Model>> zoo;
  zoo.push_back(std::make_shared<models::LogisticRegression>());
  zoo.push_back(std::make_shared<models::LinearRegression>());
  models::GbdtConfig gb;
  gb.n_trees = 6;
  zoo.push_back(std::make_shared<models::Gbdt>(gb));
  models::MlpConfig mc;
  mc.hidden = 6;
  mc.classification = true;
  zoo.push_back(std::make_shared<models::Mlp>(mc));

  for (const auto& m : zoo) {
    m->fit(fx, y);
    serialize::Writer w;
    serialize::save_model(w, *m);
    serialize::Reader r(w.bytes());
    const auto loaded = serialize::load_model(r);
    EXPECT_TRUE(r.at_end()) << m->name();
    EXPECT_EQ(loaded->name(), m->name());
    EXPECT_EQ(loaded->is_classifier(), m->is_classifier());
    EXPECT_EQ(loaded->predict(fx), m->predict(fx)) << m->name();
    EXPECT_EQ(loaded->feature_importances(), m->feature_importances())
        << m->name();
  }
}

}  // namespace
}  // namespace willump
