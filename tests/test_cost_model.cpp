#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "kernels/autotune.hpp"
#include "test_support.hpp"
#include "workloads/price.hpp"

namespace willump::core {
namespace {

TEST(IfvStats, TotalCostSumsPerGeneratorCosts) {
  IfvStats s;
  s.cost_seconds = {0.25, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(s.total_cost(), 1.75);
}

TEST(IfvStats, EmptyStatsCostZero) {
  IfvStats s;
  EXPECT_DOUBLE_EQ(s.total_cost(), 0.0);
}

TEST(CostModel, OneCostPerGeneratorAllPositive) {
  auto& f = willump::testing::shared_toxic();
  const auto costs = measure_fg_costs(*f.compiled, f.wl.train.inputs);
  ASSERT_EQ(costs.size(), f.compiled->analysis().num_generators());
  for (double c : costs) {
    // measure_fg_costs floors every cost at a small epsilon so
    // cost-effectiveness ratios stay finite.
    EXPECT_GE(c, 1e-9);
  }
  EXPECT_GT(std::accumulate(costs.begin(), costs.end(), 0.0), 0.0);
}

TEST(CostModel, InterpretedExecutorMeasurableToo) {
  auto& f = willump::testing::shared_toxic();
  const auto costs = measure_fg_costs(*f.interpreted, f.wl.train.inputs);
  ASSERT_EQ(costs.size(), f.interpreted->analysis().num_generators());
}

TEST(CostModel, RemoteNetworkRaisesLookupCosts) {
  // The same Credit pipeline measured with local then remote tables: the
  // simulated RTT is a real (spin) wait inside the lookup nodes, so the
  // profiled generator costs must rise.
  workloads::CreditConfig cfg;
  cfg.seed = willump::testing::kCreditSeed;
  cfg.sizes = {.train = 800, .valid = 300, .test = 300};
  cfg.n_clients = 1000;
  auto wl = workloads::make_credit(cfg);
  CompiledExecutor ex(wl.pipeline.graph, analyze_ifvs(wl.pipeline.graph));

  const auto local = measure_fg_costs(ex, wl.train.inputs);
  wl.tables->set_network(workloads::default_remote_network());
  const auto remote = measure_fg_costs(ex, wl.train.inputs);

  ASSERT_EQ(local.size(), remote.size());
  const double local_total =
      std::accumulate(local.begin(), local.end(), 0.0);
  const double remote_total =
      std::accumulate(remote.begin(), remote.end(), 0.0);
  EXPECT_GT(remote_total, local_total);
}

TEST(CostModel, OneHotStageTunesHashingGraphs) {
  // Price's graph hashes brand/category one-hots, so the staged feature-op
  // search must time both one-hot shapes and install a winner; both shapes
  // must produce bit-identical matrices.
  workloads::PriceConfig cfg;
  cfg.sizes = {.train = 500, .valid = 200, .test = 200};
  cfg.name_tfidf_features = 200;
  const auto wl = workloads::make_price(cfg);
  CompiledExecutor ex(wl.pipeline.graph, analyze_ifvs(wl.pipeline.graph));
  std::vector<std::size_t> probe_rows{0, 1, 2, 3};
  ex.probe_layout(wl.train.inputs.select_rows(probe_rows));

  std::vector<std::size_t> rows(64);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  const data::Batch sample = wl.train.inputs.select_rows(rows);

  // Parity across the one-hot shapes, independent of the tuner's pick.
  kernels::FeatureOpConfig c = ex.featureop_config();
  c.onehot = kernels::OneHotVariant::Scalar;
  ex.set_featureop_config(c);
  const auto scalar_m = ex.compute_matrix(sample).to_csr();
  c.onehot = kernels::OneHotVariant::Batched;
  ex.set_featureop_config(c);
  const auto batched_m = ex.compute_matrix(sample).to_csr();
  ASSERT_EQ(scalar_m.rows(), batched_m.rows());
  for (std::size_t r = 0; r < scalar_m.rows(); ++r) {
    EXPECT_TRUE(scalar_m.row_vector(r) == batched_m.row_vector(r))
        << "row " << r;
  }

  kernels::AutotuneConfig acfg;
  acfg.reps = 1;
  std::vector<kernels::VariantTiming> timings;
  (void)tune_feature_ops(ex, sample, acfg, &timings);
  bool saw_scalar = false;
  bool saw_batched = false;
  for (const auto& t : timings) {
    if (t.name == "ops/onehot:scalar") saw_scalar = true;
    if (t.name == "ops/onehot:batched") saw_batched = true;
  }
  EXPECT_TRUE(saw_scalar);
  EXPECT_TRUE(saw_batched);
}

TEST(CostModel, OneHotStageSkippedWithoutHashingOps) {
  // Toxic has no one-hot op: the stage must not spend measurements on it.
  auto& f = willump::testing::shared_toxic();
  std::vector<std::size_t> rows(32);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  const data::Batch sample = f.wl.train.inputs.select_rows(rows);
  kernels::AutotuneConfig acfg;
  acfg.reps = 1;
  std::vector<kernels::VariantTiming> timings;
  (void)tune_feature_ops(*f.compiled, sample, acfg, &timings);
  for (const auto& t : timings) {
    EXPECT_EQ(t.name.find("ops/onehot:"), std::string::npos) << t.name;
  }
}

TEST(CostModel, CascadeStatsUseMeasuredCosts) {
  // The trained cascade's per-IFV stats come from this cost model: same
  // generator count and the same positivity floor.
  auto& f = willump::testing::shared_toxic();
  ASSERT_TRUE(f.cascade.enabled());
  ASSERT_EQ(f.cascade.stats.cost_seconds.size(),
            f.compiled->analysis().num_generators());
  for (double c : f.cascade.stats.cost_seconds) {
    EXPECT_GE(c, 1e-9);
  }
  EXPECT_DOUBLE_EQ(f.cascade.stats.total_cost(),
                   std::accumulate(f.cascade.stats.cost_seconds.begin(),
                                   f.cascade.stats.cost_seconds.end(), 0.0));
}

}  // namespace
}  // namespace willump::core
