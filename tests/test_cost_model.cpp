#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "test_support.hpp"

namespace willump::core {
namespace {

TEST(IfvStats, TotalCostSumsPerGeneratorCosts) {
  IfvStats s;
  s.cost_seconds = {0.25, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(s.total_cost(), 1.75);
}

TEST(IfvStats, EmptyStatsCostZero) {
  IfvStats s;
  EXPECT_DOUBLE_EQ(s.total_cost(), 0.0);
}

TEST(CostModel, OneCostPerGeneratorAllPositive) {
  auto& f = willump::testing::shared_toxic();
  const auto costs = measure_fg_costs(*f.compiled, f.wl.train.inputs);
  ASSERT_EQ(costs.size(), f.compiled->analysis().num_generators());
  for (double c : costs) {
    // measure_fg_costs floors every cost at a small epsilon so
    // cost-effectiveness ratios stay finite.
    EXPECT_GE(c, 1e-9);
  }
  EXPECT_GT(std::accumulate(costs.begin(), costs.end(), 0.0), 0.0);
}

TEST(CostModel, InterpretedExecutorMeasurableToo) {
  auto& f = willump::testing::shared_toxic();
  const auto costs = measure_fg_costs(*f.interpreted, f.wl.train.inputs);
  ASSERT_EQ(costs.size(), f.interpreted->analysis().num_generators());
}

TEST(CostModel, RemoteNetworkRaisesLookupCosts) {
  // The same Credit pipeline measured with local then remote tables: the
  // simulated RTT is a real (spin) wait inside the lookup nodes, so the
  // profiled generator costs must rise.
  workloads::CreditConfig cfg;
  cfg.seed = willump::testing::kCreditSeed;
  cfg.sizes = {.train = 800, .valid = 300, .test = 300};
  cfg.n_clients = 1000;
  auto wl = workloads::make_credit(cfg);
  CompiledExecutor ex(wl.pipeline.graph, analyze_ifvs(wl.pipeline.graph));

  const auto local = measure_fg_costs(ex, wl.train.inputs);
  wl.tables->set_network(workloads::default_remote_network());
  const auto remote = measure_fg_costs(ex, wl.train.inputs);

  ASSERT_EQ(local.size(), remote.size());
  const double local_total =
      std::accumulate(local.begin(), local.end(), 0.0);
  const double remote_total =
      std::accumulate(remote.begin(), remote.end(), 0.0);
  EXPECT_GT(remote_total, local_total);
}

TEST(CostModel, CascadeStatsUseMeasuredCosts) {
  // The trained cascade's per-IFV stats come from this cost model: same
  // generator count and the same positivity floor.
  auto& f = willump::testing::shared_toxic();
  ASSERT_TRUE(f.cascade.enabled());
  ASSERT_EQ(f.cascade.stats.cost_seconds.size(),
            f.compiled->analysis().num_generators());
  for (double c : f.cascade.stats.cost_seconds) {
    EXPECT_GE(c, 1e-9);
  }
  EXPECT_DOUBLE_EQ(f.cascade.stats.total_cost(),
                   std::accumulate(f.cascade.stats.cost_seconds.begin(),
                                   f.cascade.stats.cost_seconds.end(), 0.0));
}

}  // namespace
}  // namespace willump::core
