#include "serving/clipper_sim.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace willump::serving {
namespace {

// Shared fixture: optimized Toxic pipeline from test_support.
willump::testing::OptimizedFixture& fixture() {
  return willump::testing::shared_toxic_optimized();
}

TEST(ClipperWire, BatchRoundTrip) {
  data::Batch b;
  b.add("s", data::Column(data::StringColumn{"hello \"world\"", "a\\b"}));
  b.add("i", data::Column(data::IntColumn{-5, 12}));
  b.add("d", data::Column(data::DoubleColumn{1.5, -0.25}));
  const auto wire = ClipperSim::serialize_batch(b);
  const auto back = ClipperSim::deserialize_batch(wire, b);
  EXPECT_EQ(back.get("s").strings()[0], "hello \"world\"");
  EXPECT_EQ(back.get("s").strings()[1], "a\\b");
  EXPECT_EQ(back.get("i").ints()[0], -5);
  EXPECT_DOUBLE_EQ(back.get("d").doubles()[1], -0.25);
}

TEST(ClipperWire, EmptyBatchRoundTrip) {
  data::Batch b;
  b.add("s", data::Column(data::StringColumn{}));
  b.add("i", data::Column(data::IntColumn{}));
  const auto wire = ClipperSim::serialize_batch(b);
  const auto back = ClipperSim::deserialize_batch(wire, b);
  EXPECT_EQ(back.num_columns(), 2u);
  EXPECT_EQ(back.num_rows(), 0u);
}

TEST(ClipperWire, MalformedInputRejectedWithClearError) {
  data::Batch schema;
  schema.add("i", data::Column(data::IntColumn{0}));
  schema.add("s", data::Column(data::StringColumn{""}));

  const auto expect_rejected = [&](const std::string& wire) {
    EXPECT_THROW((void)ClipperSim::deserialize_batch(wire, schema),
                 std::invalid_argument)
        << "accepted malformed wire: " << wire;
  };
  expect_rejected("");                      // no object at all
  expect_rejected("[");                     // wrong opening token
  expect_rejected("{");                     // truncated after '{'
  expect_rejected("{\"i\"");                // truncated after column name
  expect_rejected("{\"i\":[1,2");           // truncated mid-column
  expect_rejected("{\"i\":[1,2]");          // missing ';' separator
  expect_rejected("{\"i\":[1,2];");         // missing closing '}'
  expect_rejected("{\"i\":[x];}");          // non-numeric int payload
  expect_rejected("{\"i\":[1 2];}");        // missing ',' between values
  expect_rejected("{\"unknown\":[1];}");    // column absent from schema
  expect_rejected("{\"s\":[\"abc];}");      // unterminated string
  expect_rejected("{\"s\":[\"a\\");         // escape at end of input
  expect_rejected("{\"i\":[1];}trailing");  // bytes after the object
  expect_rejected("{}");                    // schema columns all missing
  expect_rejected("{\"i\":[1];}");          // schema column "s" missing
  expect_rejected("{\"i\":[1];\"i\":[2];}");  // duplicate column
}

TEST(ClipperWire, MalformedPredictionsRejected) {
  EXPECT_THROW((void)ClipperSim::deserialize_predictions("1.5,,2.5"),
               std::invalid_argument);
  EXPECT_THROW((void)ClipperSim::deserialize_predictions("abc"),
               std::invalid_argument);
}

TEST(ClipperWire, PredictionsRoundTrip) {
  const std::vector<double> preds{0.125, 1.0, 3.14159e-7};
  const auto wire = ClipperSim::serialize_predictions(preds);
  const auto back = ClipperSim::deserialize_predictions(wire);
  ASSERT_EQ(back.size(), preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], preds[i]);
  }
}

TEST(ClipperSim, ServeMatchesDirectPrediction) {
  auto& f = fixture();
  ClipperConfig cfg;
  cfg.rpc_fixed_micros = 10.0;
  ClipperSim clipper(&f.pipeline, cfg);
  const auto batch = f.wl.test.inputs.select_rows(
      std::vector<std::size_t>{0, 1, 2, 3, 4});
  const auto served = clipper.serve(batch);
  const auto direct = f.pipeline.predict(batch);
  ASSERT_EQ(served.size(), direct.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_DOUBLE_EQ(served[i], direct[i]);
  }
}

TEST(ClipperSim, StatsAccountOverheads) {
  auto& f = fixture();
  ClipperConfig cfg;
  cfg.rpc_fixed_micros = 200.0;
  ClipperSim clipper(&f.pipeline, cfg);
  (void)clipper.serve(f.wl.test.inputs.row(0));
  (void)clipper.serve(f.wl.test.inputs.row(1));
  EXPECT_EQ(clipper.stats().queries, 2u);
  EXPECT_EQ(clipper.stats().rows, 2u);
  EXPECT_GT(clipper.stats().rpc_seconds, 350e-6);
  EXPECT_GT(clipper.stats().serialize_seconds, 0.0);
  EXPECT_GT(clipper.stats().inference_seconds, 0.0);
  clipper.reset_stats();
  EXPECT_EQ(clipper.stats().queries, 0u);
}

TEST(ClipperSim, EndToEndCacheHitsIdenticalInputs) {
  auto& f = fixture();
  ClipperConfig cfg;
  cfg.rpc_fixed_micros = 1.0;
  cfg.enable_e2e_cache = true;
  ClipperSim clipper(&f.pipeline, cfg);
  const auto row = f.wl.test.inputs.row(7);
  const auto p1 = clipper.serve(row);
  const auto p2 = clipper.serve(row);
  EXPECT_DOUBLE_EQ(p1[0], p2[0]);
  EXPECT_EQ(clipper.stats().cache_hits, 1u);
  // A different input misses.
  (void)clipper.serve(f.wl.test.inputs.row(8));
  EXPECT_EQ(clipper.stats().cache_hits, 1u);
}

TEST(ClipperSim, RpcOverheadAmortizedOverBatch) {
  auto& f = fixture();
  ClipperConfig cfg;
  cfg.rpc_fixed_micros = 500.0;
  ClipperSim clipper(&f.pipeline, cfg);

  std::vector<std::size_t> idx1{0};
  std::vector<std::size_t> idx100;
  for (std::size_t i = 0; i < 100; ++i) idx100.push_back(i);
  const double lat1 = clipper.serve_timed(f.wl.test.inputs.select_rows(idx1));
  const double lat100 = clipper.serve_timed(f.wl.test.inputs.select_rows(idx100));
  // 100x the rows costs far less than 100x the latency (fixed overheads).
  EXPECT_LT(lat100, lat1 * 50.0);
}

TEST(ClipperSim, HostsMultipleModelsWithPerModelAccounting) {
  auto& f = fixture();
  ClipperConfig cfg;
  cfg.rpc_fixed_micros = 10.0;
  ClipperSim clipper(cfg);
  clipper.add_model("music-like", &f.pipeline);
  clipper.add_model("toxic-like", &f.pipeline);

  const auto batch_a = f.wl.test.inputs.select_rows(std::vector<std::size_t>{0, 1, 2});
  const auto batch_b =
      f.wl.test.inputs.select_rows(std::vector<std::size_t>{3, 4, 5, 6, 7});
  const auto served_a = clipper.serve("music-like", batch_a);
  const auto served_b = clipper.serve("toxic-like", batch_b);
  const auto direct_a = f.pipeline.predict(batch_a);
  const auto direct_b = f.pipeline.predict(batch_b);
  for (std::size_t i = 0; i < served_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(served_a[i], direct_a[i]);
  }
  for (std::size_t i = 0; i < served_b.size(); ++i) {
    EXPECT_DOUBLE_EQ(served_b[i], direct_b[i]);
  }

  // The registry accounts each hosted model separately; the frontend's wire
  // stats aggregate.
  EXPECT_EQ(clipper.server().stats("music-like").rows, 3u);
  EXPECT_EQ(clipper.server().stats("toxic-like").rows, 5u);
  EXPECT_EQ(clipper.stats().queries, 2u);
  EXPECT_EQ(clipper.stats().rows, 8u);
  EXPECT_THROW((void)clipper.serve("unknown", batch_a), std::invalid_argument);
}

TEST(EndToEndCache, KeyCoversAllColumns) {
  data::Batch a;
  a.add("x", data::Column(data::IntColumn{1}));
  a.add("y", data::Column(data::StringColumn{"s"}));
  data::Batch b;
  b.add("x", data::Column(data::IntColumn{1}));
  b.add("y", data::Column(data::StringColumn{"t"}));
  EXPECT_NE(EndToEndCache::key_of(a), EndToEndCache::key_of(b));
  EXPECT_EQ(EndToEndCache::key_of(a), EndToEndCache::key_of(a));
}

}  // namespace
}  // namespace willump::serving
