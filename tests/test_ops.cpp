#include <gtest/gtest.h>

#include "ops/concat.hpp"
#include "ops/encoders.hpp"
#include "ops/scale.hpp"
#include "ops/string_ops.hpp"

namespace willump::ops {
namespace {

data::Value str_col(std::initializer_list<const char*> vals) {
  data::StringColumn c;
  for (const char* v : vals) c.emplace_back(v);
  return data::Value(data::Column(std::move(c)));
}

TEST(StringOps, LowercaseBatch) {
  LowercaseOp op;
  const data::Value in[] = {str_col({"Hello", "WORLD"})};
  const auto out = op.eval_batch(in);
  EXPECT_EQ(out.column().strings()[0], "hello");
  EXPECT_EQ(out.column().strings()[1], "world");
  EXPECT_TRUE(op.is_string_map());
  EXPECT_EQ(op.map_string("AbC"), "abc");
}

TEST(StringOps, StripPunctBatch) {
  StripPunctOp op;
  const data::Value in[] = {str_col({"a,b!c"})};
  EXPECT_EQ(op.eval_batch(in).column().strings()[0], "a b c");
}

TEST(StringOps, WrongInputThrows) {
  LowercaseOp op;
  const data::Value in[] = {data::Value(data::Column(data::IntColumn{1}))};
  EXPECT_THROW(op.eval_batch(in), std::invalid_argument);
}

TEST(StringOps, StatsFeatures) {
  StringStatsOp op;
  const data::Value in[] = {str_col({"Hello World 42"})};
  const auto out = op.eval_batch(in).features().dense();
  ASSERT_EQ(out.cols(), StringStatsOp::kNumFeatures);
  EXPECT_DOUBLE_EQ(out(0, 0), 14.0);  // length
  EXPECT_DOUBLE_EQ(out(0, 1), 3.0);   // words
  EXPECT_DOUBLE_EQ(out(0, 2), 4.0);   // mean word length
  EXPECT_GT(out(0, 3), 0.0);          // upper ratio
  EXPECT_GT(out(0, 4), 0.0);          // digit ratio
  EXPECT_DOUBLE_EQ(out(0, 5), 1.0);   // unique ratio
}

TEST(StringOps, StatsEmptyString) {
  StringStatsOp op;
  const data::Value in[] = {str_col({""})};
  const auto out = op.eval_batch(in).features().dense();
  for (std::size_t c = 0; c < out.cols(); ++c) {
    EXPECT_DOUBLE_EQ(out(0, c), 0.0);
  }
}

TEST(StringOps, KeywordCounts) {
  KeywordCountOp op({"foo", "bar"});
  const data::Value in[] = {str_col({"foo bar foo", "none here"})};
  const auto out = op.eval_batch(in).features().dense();
  ASSERT_EQ(out.cols(), 3u);        // 2 keywords + total
  EXPECT_DOUBLE_EQ(out(0, 0), 2.0);  // foo
  EXPECT_DOUBLE_EQ(out(0, 1), 1.0);  // bar
  EXPECT_DOUBLE_EQ(out(0, 2), 3.0);  // total
  EXPECT_DOUBLE_EQ(out(1, 2), 0.0);
}

TEST(Encoders, OneHotHashStable) {
  OneHotHashOp op(16);
  EXPECT_EQ(op.bucket_of(42), op.bucket_of(42));
  const data::Value in[] = {data::Value(data::Column(data::IntColumn{42, 42, 7}))};
  const auto out = op.eval_batch(in).features().sparse();
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.row(0).indices[0], out.row(1).indices[0]);
  EXPECT_DOUBLE_EQ(out.row(0).values[0], 1.0);
}

TEST(Encoders, OneHotSaltChangesBuckets) {
  OneHotHashOp a(1024, 1), b(1024, 2);
  int differ = 0;
  for (std::int64_t k = 0; k < 50; ++k) {
    if (a.bucket_of(k) != b.bucket_of(k)) ++differ;
  }
  EXPECT_GT(differ, 40);
}

TEST(Encoders, NumericColumnsAssembles) {
  NumericColumnsOp op;
  const data::Value in[] = {
      data::Value(data::Column(data::IntColumn{1, 2})),
      data::Value(data::Column(data::DoubleColumn{0.5, 1.5}))};
  const auto out = op.eval_batch(in).features().dense();
  ASSERT_EQ(out.rows(), 2u);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_DOUBLE_EQ(out(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(out(1, 1), 1.5);
}

TEST(Encoders, NumericRejectsStrings) {
  NumericColumnsOp op;
  const data::Value in[] = {str_col({"x"})};
  EXPECT_THROW(op.eval_batch(in), std::invalid_argument);
}

TEST(Encoders, Bucketize) {
  BucketizeOp op({10.0, 20.0});
  const data::Value in[] = {
      data::Value(data::Column(data::DoubleColumn{5.0, 10.0, 15.0, 25.0}))};
  const auto out = op.eval_batch(in).column().doubles();
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);  // bucket = number of boundaries <= v
  EXPECT_DOUBLE_EQ(out[2], 1.0);
  EXPECT_DOUBLE_EQ(out[3], 2.0);
}

TEST(Encoders, ColumnMathKinds) {
  const data::Value a(data::Column(data::DoubleColumn{4.0, 9.0}));
  const data::Value b(data::Column(data::DoubleColumn{2.0, 3.0}));
  const data::Value ab[] = {a, b};
  EXPECT_DOUBLE_EQ(
      ColumnMathOp(ColumnMathOp::Kind::Add).eval_batch(ab).column().doubles()[0],
      6.0);
  EXPECT_DOUBLE_EQ(
      ColumnMathOp(ColumnMathOp::Kind::Sub).eval_batch(ab).column().doubles()[1],
      6.0);
  EXPECT_DOUBLE_EQ(
      ColumnMathOp(ColumnMathOp::Kind::Mul).eval_batch(ab).column().doubles()[0],
      8.0);
  EXPECT_DOUBLE_EQ(
      ColumnMathOp(ColumnMathOp::Kind::Div).eval_batch(ab).column().doubles()[1],
      3.0);
  const data::Value unary[] = {a};
  EXPECT_NEAR(ColumnMathOp(ColumnMathOp::Kind::Log1p)
                  .eval_batch(unary)
                  .column()
                  .doubles()[0],
              std::log(5.0), 1e-12);
}

TEST(Encoders, DivByZeroYieldsZero) {
  const data::Value a(data::Column(data::DoubleColumn{1.0}));
  const data::Value b(data::Column(data::DoubleColumn{0.0}));
  const data::Value ab[] = {a, b};
  EXPECT_DOUBLE_EQ(
      ColumnMathOp(ColumnMathOp::Kind::Div).eval_batch(ab).column().doubles()[0],
      0.0);
}

TEST(Concat, JoinsBlocksInOrder) {
  ConcatOp op;
  data::DenseMatrix a(1, 1), b(1, 2);
  a(0, 0) = 1.0;
  b(0, 0) = 2.0;
  b(0, 1) = 3.0;
  const data::Value in[] = {data::Value(data::FeatureMatrix(a)),
                            data::Value(data::FeatureMatrix(b))};
  const auto out = op.eval_batch(in).features().dense();
  ASSERT_EQ(out.cols(), 3u);
  EXPECT_DOUBLE_EQ(out(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(out(0, 2), 3.0);
  EXPECT_TRUE(op.commutative());
}

TEST(Concat, RejectsColumns) {
  ConcatOp op;
  const data::Value in[] = {str_col({"x"})};
  EXPECT_THROW(op.eval_batch(in), std::invalid_argument);
}

TEST(Scale, DenseAffine) {
  ScaleOp op({2.0, 0.5}, {1.0, 0.0});
  data::DenseMatrix m(1, 2);
  m(0, 0) = 3.0;
  m(0, 1) = 4.0;
  const data::Value in[] = {data::Value(data::FeatureMatrix(m))};
  const auto out = op.eval_batch(in).features().dense();
  EXPECT_DOUBLE_EQ(out(0, 0), 4.0);  // (3-1)*2
  EXPECT_DOUBLE_EQ(out(0, 1), 2.0);  // (4-0)*0.5
  EXPECT_TRUE(op.commutative());
}

TEST(Scale, ColumnSubsetUsesGlobalIndices) {
  ScaleOp op({2.0, 3.0, 4.0}, {0.0, 0.0, 0.0});
  data::DenseMatrix m(1, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 1.0;
  // Local columns 0,1 map to global columns 0,2 (IFV subset layout).
  const std::vector<std::size_t> cols{0, 2};
  const auto out = op.apply_columns(data::FeatureMatrix(m), cols).dense();
  EXPECT_DOUBLE_EQ(out(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 4.0);
}

TEST(Scale, SparseScalesNonzeros) {
  ScaleOp op({2.0, 3.0}, {0.0, 0.0});
  data::CsrMatrix m(2);
  data::SparseVector r(2);
  r.push_back(1, 5.0);
  m.append_row(r);
  const std::vector<std::size_t> cols{0, 1};
  const auto out = op.apply_columns(data::FeatureMatrix(m), cols).sparse();
  EXPECT_DOUBLE_EQ(out.row_vector(0).at(1), 15.0);
}

TEST(Scale, StandardizeFromData) {
  data::DenseMatrix m(4, 1);
  m(0, 0) = 0.0;
  m(1, 0) = 2.0;
  m(2, 0) = 4.0;
  m(3, 0) = 6.0;
  const auto op = ScaleOp::standardize(data::FeatureMatrix(m));
  const data::Value in[] = {data::Value(data::FeatureMatrix(m))};
  const auto out = op.eval_batch(in).features().dense();
  // Mean 3, population sd sqrt(5): standardized mean is 0.
  double mean = 0.0;
  for (std::size_t r = 0; r < 4; ++r) mean += out(r, 0);
  EXPECT_NEAR(mean / 4.0, 0.0, 1e-12);
}

TEST(Scale, MappingSizeMismatchThrows) {
  ScaleOp op({1.0, 1.0}, {0.0, 0.0});
  data::DenseMatrix m(1, 2);
  const std::vector<std::size_t> wrong{0};
  EXPECT_THROW(op.apply_columns(data::FeatureMatrix(m), wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace willump::ops
