#include "models/gbdt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "models/metrics.hpp"

namespace willump::models {
namespace {

/// Nonlinear binary problem (XOR-like) that a linear model cannot solve.
data::DenseMatrix make_xor(common::Rng& rng, std::size_t n,
                           std::vector<double>& y) {
  data::DenseMatrix x(n, 4);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.next_gaussian();
    x(i, 1) = rng.next_gaussian();
    x(i, 2) = rng.next_gaussian() * 0.05;  // noise feature
    x(i, 3) = rng.next_gaussian() * 0.05;  // noise feature
    y[i] = (x(i, 0) > 0.0) != (x(i, 1) > 0.0) ? 1.0 : 0.0;
  }
  return x;
}

TEST(Gbdt, LearnsNonlinearBoundary) {
  common::Rng rng(1);
  std::vector<double> y;
  const auto x = make_xor(rng, 2000, y);
  GbdtConfig cfg;
  cfg.n_trees = 30;
  cfg.max_depth = 4;
  Gbdt m(cfg);
  m.fit(data::FeatureMatrix(x), y);
  EXPECT_GT(accuracy(m.predict(data::FeatureMatrix(x)), y), 0.9);
}

TEST(Gbdt, RegressionFitsSmoothFunction) {
  common::Rng rng(2);
  const std::size_t n = 1500;
  data::DenseMatrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.next_double() * 4.0 - 2.0;
    x(i, 1) = rng.next_double() * 4.0 - 2.0;
    y[i] = std::sin(x(i, 0)) + 0.5 * x(i, 1) * x(i, 1);
  }
  GbdtConfig cfg;
  cfg.classification = false;
  cfg.n_trees = 60;
  Gbdt m(cfg);
  m.fit(data::FeatureMatrix(x), y);
  EXPECT_GT(r2(m.predict(data::FeatureMatrix(x)), y), 0.9);
}

TEST(Gbdt, GainImportanceFindsInformativeFeatures) {
  common::Rng rng(3);
  std::vector<double> y;
  const auto x = make_xor(rng, 2000, y);
  Gbdt m;
  m.fit(data::FeatureMatrix(x), y);
  const auto gain = m.gain_importances();
  ASSERT_EQ(gain.size(), 4u);
  EXPECT_GT(gain[0] + gain[1], 10.0 * (gain[2] + gain[3]));
}

TEST(Gbdt, PermutationImportanceFindsInformativeFeatures) {
  common::Rng rng(4);
  std::vector<double> y;
  const auto x = make_xor(rng, 2000, y);
  Gbdt m;
  m.fit(data::FeatureMatrix(x), y);
  const auto perm = m.permutation_importances();
  ASSERT_EQ(perm.size(), 4u);
  EXPECT_GT(perm[0], perm[2]);
  EXPECT_GT(perm[1], perm[3]);
}

TEST(Gbdt, ClassifierOutputsProbabilities) {
  common::Rng rng(5);
  std::vector<double> y;
  const auto x = make_xor(rng, 500, y);
  Gbdt m;
  m.fit(data::FeatureMatrix(x), y);
  for (double p : m.predict(data::FeatureMatrix(x))) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Gbdt, DeterministicTraining) {
  common::Rng rng(6);
  std::vector<double> y;
  const auto x = make_xor(rng, 600, y);
  Gbdt a, b;
  a.fit(data::FeatureMatrix(x), y);
  b.fit(data::FeatureMatrix(x), y);
  const auto pa = a.predict(data::FeatureMatrix(x));
  const auto pb = b.predict(data::FeatureMatrix(x));
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  }
}

TEST(Gbdt, MoreTreesFitBetter) {
  common::Rng rng(7);
  std::vector<double> y;
  const auto x = make_xor(rng, 1500, y);
  GbdtConfig small_cfg, big_cfg;
  small_cfg.n_trees = 3;
  big_cfg.n_trees = 40;
  small_cfg.permutation_rows = big_cfg.permutation_rows = 0;
  Gbdt small(small_cfg), big(big_cfg);
  small.fit(data::FeatureMatrix(x), y);
  big.fit(data::FeatureMatrix(x), y);
  EXPECT_GT(accuracy(big.predict(data::FeatureMatrix(x)), y),
            accuracy(small.predict(data::FeatureMatrix(x)), y));
}

TEST(Gbdt, HandlesConstantTarget) {
  data::DenseMatrix x(50, 2);
  std::vector<double> y(50, 1.0);
  Gbdt m;
  m.fit(data::FeatureMatrix(x), y);
  for (double p : m.predict(data::FeatureMatrix(x))) {
    EXPECT_GT(p, 0.9);
  }
}

TEST(Gbdt, SparseInputDensifies) {
  common::Rng rng(8);
  std::vector<double> y;
  const auto xd = make_xor(rng, 400, y);
  const auto xs = data::FeatureMatrix(xd).to_csr();
  Gbdt md, ms;
  md.fit(data::FeatureMatrix(xd), y);
  ms.fit(data::FeatureMatrix(xs), y);
  const auto pd = md.predict(data::FeatureMatrix(xd));
  const auto ps = ms.predict(data::FeatureMatrix(xs));
  for (std::size_t i = 0; i < pd.size(); ++i) {
    EXPECT_NEAR(pd[i], ps[i], 1e-12);
  }
}

TEST(Gbdt, SubsampleStillLearns) {
  common::Rng rng(9);
  std::vector<double> y;
  const auto x = make_xor(rng, 1500, y);
  GbdtConfig cfg;
  cfg.subsample = 0.7;
  Gbdt m(cfg);
  m.fit(data::FeatureMatrix(x), y);
  EXPECT_GT(accuracy(m.predict(data::FeatureMatrix(x)), y), 0.85);
}

TEST(Tree, PredictTraversesSplits) {
  Tree t;
  auto& nodes = t.nodes();
  nodes.push_back({0, 0.5, 1, 2, 0.0});  // split on feature 0 at 0.5
  nodes.push_back({-1, 0.0, -1, -1, -1.0});
  nodes.push_back({-1, 0.0, -1, -1, +1.0});
  const std::vector<double> left{0.2};
  const std::vector<double> right{0.9};
  EXPECT_DOUBLE_EQ(t.predict_row(left), -1.0);
  EXPECT_DOUBLE_EQ(t.predict_row(right), 1.0);
}

}  // namespace
}  // namespace willump::models
