#include "store/kv_store.hpp"

#include <gtest/gtest.h>

#include "common/timer.hpp"
#include "ops/lookup.hpp"

namespace willump::store {
namespace {

std::shared_ptr<FeatureTable> make_table() {
  auto t = std::make_shared<FeatureTable>("test", 2);
  t->put(1, data::DenseVector({1.0, 2.0}));
  t->put(2, data::DenseVector({3.0, 4.0}));
  return t;
}

TEST(FeatureTable, GetAndDefault) {
  const auto t = make_table();
  EXPECT_DOUBLE_EQ(t->get(1)[0], 1.0);
  EXPECT_TRUE(t->contains(2));
  EXPECT_FALSE(t->contains(99));
  // Unknown key yields the all-zero default row.
  EXPECT_DOUBLE_EQ(t->get(99)[0], 0.0);
  EXPECT_EQ(t->get(99).dim(), 2u);
}

TEST(FeatureTable, DimMismatchThrows) {
  FeatureTable t("t", 3);
  EXPECT_THROW(t.put(1, data::DenseVector({1.0})), std::invalid_argument);
}

TEST(TableClient, LocalLookupNoTrafficCounted) {
  TableClient c(make_table(), NetworkModel{});
  std::vector<const data::DenseVector*> rows;
  const std::vector<std::int64_t> keys{1, 2, 1};
  c.get_batch(keys, rows);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ((*rows[1])[1], 4.0);
  EXPECT_EQ(c.stats().round_trips.load(), 0u);
  EXPECT_EQ(c.stats().keys_fetched.load(), 0u);
}

TEST(TableClient, RemoteBatchIsOneRoundTrip) {
  TableClient c(make_table(), NetworkModel{.rtt_micros = 30.0, .per_key_micros = 0.5});
  std::vector<const data::DenseVector*> rows;
  const std::vector<std::int64_t> keys{1, 2, 1, 2};
  c.get_batch(keys, rows);
  EXPECT_EQ(c.stats().round_trips.load(), 1u);
  EXPECT_EQ(c.stats().keys_fetched.load(), 4u);
  EXPECT_GT(c.stats().simulated_wait_nanos.load(), 0u);
}

TEST(TableClient, RemoteWaitScalesWithRtt) {
  TableClient slow(make_table(), NetworkModel{.rtt_micros = 300.0, .per_key_micros = 0.0});
  std::vector<const data::DenseVector*> rows;
  const std::vector<std::int64_t> keys{1};
  common::Timer t;
  slow.get_batch(keys, rows);
  EXPECT_GE(t.elapsed_micros(), 250.0);  // spin-wait really waits
}

TEST(TableClient, EmptyKeysNoTraffic) {
  TableClient c(make_table(), NetworkModel{.rtt_micros = 30.0, .per_key_micros = 0.5});
  std::vector<const data::DenseVector*> rows;
  c.get_batch({}, rows);
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(c.stats().round_trips.load(), 0u);
}

TEST(TableRegistry, FindAndAggregate) {
  TableRegistry reg;
  auto c1 = reg.add(make_table(), NetworkModel{.rtt_micros = 1.0, .per_key_micros = 0.0});
  auto t2 = std::make_shared<FeatureTable>("other", 1);
  auto c2 = reg.add(t2, NetworkModel{.rtt_micros = 1.0, .per_key_micros = 0.0});
  EXPECT_EQ(reg.find("test"), c1);
  EXPECT_EQ(reg.find("other"), c2);
  EXPECT_EQ(reg.find("nope"), nullptr);

  std::vector<const data::DenseVector*> rows;
  const std::vector<std::int64_t> keys{1, 2};
  c1->get_batch(keys, rows);
  c2->get_batch(keys, rows);
  EXPECT_EQ(reg.total_round_trips(), 2u);
  EXPECT_EQ(reg.total_keys_fetched(), 4u);
  reg.reset_stats();
  EXPECT_EQ(reg.total_round_trips(), 0u);
}

TEST(TableRegistry, SetNetworkFlipsAllClients) {
  TableRegistry reg;
  auto c = reg.add(make_table(), NetworkModel{});
  EXPECT_FALSE(c->network().is_remote());
  reg.set_network(NetworkModel{.rtt_micros = 50.0, .per_key_micros = 1.0});
  EXPECT_TRUE(c->network().is_remote());
  reg.set_network(NetworkModel{});
  EXPECT_FALSE(c->network().is_remote());
}

TEST(LookupOp, FetchesRowsInInputOrder) {
  auto client = std::make_shared<TableClient>(make_table(), NetworkModel{});
  ops::TableLookupOp op(client);
  const data::Value in[] = {data::Value(data::Column(data::IntColumn{2, 1}))};
  const auto out = op.eval_batch(in).features().dense();
  EXPECT_DOUBLE_EQ(out(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 1.0);
  EXPECT_FALSE(op.compilable());  // external I/O is never compiled
}

TEST(LookupOp, RejectsNonIntKeys) {
  auto client = std::make_shared<TableClient>(make_table(), NetworkModel{});
  ops::TableLookupOp op(client);
  const data::Value in[] = {data::Value(data::Column(data::DoubleColumn{1.0}))};
  EXPECT_THROW(op.eval_batch(in), std::invalid_argument);
}

}  // namespace
}  // namespace willump::store
