#include "models/linear.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "models/metrics.hpp"

namespace willump::models {
namespace {

data::DenseMatrix make_separable(common::Rng& rng, std::size_t n,
                                 std::vector<double>& y) {
  data::DenseMatrix x(n, 3);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = rng.next_bernoulli(0.5);
    x(i, 0) = rng.next_gaussian() + (pos ? 2.0 : -2.0);
    x(i, 1) = rng.next_gaussian();
    x(i, 2) = rng.next_gaussian() * 0.1;
    y[i] = pos ? 1.0 : 0.0;
  }
  return x;
}

TEST(LogisticRegression, LearnsSeparableData) {
  common::Rng rng(1);
  std::vector<double> y;
  const auto x = make_separable(rng, 800, y);
  LogisticRegression m;
  m.fit(data::FeatureMatrix(x), y);
  EXPECT_GT(accuracy(m.predict(data::FeatureMatrix(x)), y), 0.95);
}

TEST(LogisticRegression, OutputsAreProbabilities) {
  common::Rng rng(2);
  std::vector<double> y;
  const auto x = make_separable(rng, 200, y);
  LogisticRegression m;
  m.fit(data::FeatureMatrix(x), y);
  for (double p : m.predict(data::FeatureMatrix(x))) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogisticRegression, ImportanceRanksInformativeFeature) {
  common::Rng rng(3);
  std::vector<double> y;
  const auto x = make_separable(rng, 800, y);
  LogisticRegression m;
  m.fit(data::FeatureMatrix(x), y);
  const auto imp = m.feature_importances();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[2]);
}

TEST(LogisticRegression, SparseMatchesDense) {
  common::Rng rng(4);
  std::vector<double> y;
  const auto xd = make_separable(rng, 400, y);
  const auto xs = data::FeatureMatrix(xd).to_csr();
  LogisticRegression md, ms;
  md.fit(data::FeatureMatrix(xd), y);
  ms.fit(data::FeatureMatrix(xs), y);
  const auto pd = md.predict(data::FeatureMatrix(xd));
  const auto ps = ms.predict(data::FeatureMatrix(xs));
  for (std::size_t i = 0; i < pd.size(); ++i) {
    EXPECT_NEAR(pd[i], ps[i], 1e-9);
  }
}

TEST(LinearRegression, RecoversLinearTarget) {
  common::Rng rng(5);
  const std::size_t n = 1000;
  data::DenseMatrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.next_gaussian();
    x(i, 1) = rng.next_gaussian();
    y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 1) + 0.5;
  }
  LinearRegression m;
  m.fit(data::FeatureMatrix(x), y);
  EXPECT_GT(r2(m.predict(data::FeatureMatrix(x)), y), 0.98);
  ASSERT_EQ(m.weights().size(), 2u);
  EXPECT_NEAR(m.weights()[0], 3.0, 0.25);
  EXPECT_NEAR(m.weights()[1], -2.0, 0.25);
}

TEST(LinearRegression, IsNotClassifier) {
  LinearRegression reg;
  LogisticRegression clf;
  EXPECT_FALSE(reg.is_classifier());
  EXPECT_TRUE(clf.is_classifier());
}

TEST(LinearModel, CloneUntrainedKeepsHyperparams) {
  LinearConfig cfg;
  cfg.epochs = 3;
  LogisticRegression m(cfg);
  auto clone = m.clone_untrained();
  EXPECT_EQ(clone->name(), "logistic_regression");
  EXPECT_TRUE(clone->is_classifier());
  // A fresh clone has no weights until fitted.
  EXPECT_TRUE(clone->feature_importances().empty());
}

TEST(LinearModel, DeterministicTraining) {
  common::Rng rng(6);
  std::vector<double> y;
  const auto x = make_separable(rng, 300, y);
  LogisticRegression a, b;
  a.fit(data::FeatureMatrix(x), y);
  b.fit(data::FeatureMatrix(x), y);
  const auto pa = a.predict(data::FeatureMatrix(x));
  const auto pb = b.predict(data::FeatureMatrix(x));
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  }
}

TEST(ModelHelpers, LabelAndConfidence) {
  EXPECT_DOUBLE_EQ(predicted_label(0.7), 1.0);
  EXPECT_DOUBLE_EQ(predicted_label(0.3), 0.0);
  EXPECT_DOUBLE_EQ(confidence(0.7), 0.7);
  EXPECT_DOUBLE_EQ(confidence(0.2), 0.8);
  EXPECT_DOUBLE_EQ(confidence(0.5), 0.5);
}

}  // namespace
}  // namespace willump::models
