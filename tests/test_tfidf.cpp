#include "ops/tfidf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ops/tokenizer.hpp"

namespace willump::ops {
namespace {

TEST(Tokenizer, WordUnigrams) {
  const auto grams = ngrams_of("a bb ccc", Analyzer::Word, {1, 1});
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "a");
  EXPECT_EQ(grams[2], "ccc");
}

TEST(Tokenizer, WordBigramsJoinWithSpace) {
  const auto grams = ngrams_of("a b c", Analyzer::Word, {2, 2});
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "a b");
  EXPECT_EQ(grams[1], "b c");
}

TEST(Tokenizer, WordRangeEmitsBoth) {
  const auto grams = ngrams_of("a b", Analyzer::Word, {1, 2});
  EXPECT_EQ(grams.size(), 3u);  // a, b, "a b"
}

TEST(Tokenizer, CharNgramsIncludeSpaces) {
  const auto grams = ngrams_of("ab c", Analyzer::Char, {2, 2});
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[1], "b ");
}

TEST(Tokenizer, NgramLongerThanInputIsEmpty) {
  EXPECT_TRUE(ngrams_of("ab", Analyzer::Char, {5, 5}).empty());
  EXPECT_TRUE(ngrams_of("a b", Analyzer::Word, {3, 3}).empty());
}

data::StringColumn corpus() {
  return {"the cat sat", "the dog sat", "the cat ran", "a bird flew"};
}

TEST(TfIdf, VocabularyRespectsMinDf) {
  TfIdfConfig cfg;
  cfg.min_df = 2;
  cfg.max_features = 100;
  const auto m = TfIdfModel::fit(corpus(), cfg);
  EXPECT_GE(m.term_index("the"), 0);
  EXPECT_GE(m.term_index("cat"), 0);
  EXPECT_EQ(m.term_index("bird"), -1);  // df == 1
}

TEST(TfIdf, MaxFeaturesKeepsMostFrequent) {
  TfIdfConfig cfg;
  cfg.min_df = 1;
  cfg.max_features = 2;
  const auto m = TfIdfModel::fit(corpus(), cfg);
  EXPECT_EQ(m.vocabulary_size(), 2);
  EXPECT_GE(m.term_index("the"), 0);  // df 3: must survive
  // df-2 tie between "cat" and "sat" breaks alphabetically.
  EXPECT_GE(m.term_index("cat"), 0);
  EXPECT_EQ(m.term_index("dog"), -1);  // df 1 never beats df 2
}

TEST(TfIdf, RareTermsGetHigherIdfWeight) {
  TfIdfConfig cfg;
  cfg.min_df = 1;
  cfg.l2_normalize = false;
  const auto m = TfIdfModel::fit(corpus(), cfg);
  const auto v = m.transform_one("the bird");
  const auto the_idx = m.term_index("the");
  const auto bird_idx = m.term_index("bird");
  ASSERT_GE(the_idx, 0);
  ASSERT_GE(bird_idx, 0);
  EXPECT_GT(v.at(bird_idx), v.at(the_idx));
}

TEST(TfIdf, L2NormalizedRows) {
  TfIdfConfig cfg;
  cfg.min_df = 1;
  const auto m = TfIdfModel::fit(corpus(), cfg);
  const auto v = m.transform_one("the cat sat");
  EXPECT_NEAR(v.l2_norm(), 1.0, 1e-9);
}

TEST(TfIdf, UnknownTermsIgnored) {
  TfIdfConfig cfg;
  cfg.min_df = 1;
  const auto m = TfIdfModel::fit(corpus(), cfg);
  const auto v = m.transform_one("zzz qqq");
  EXPECT_EQ(v.nnz(), 0u);
}

TEST(TfIdf, TransformBatchMatchesTransformOne) {
  TfIdfConfig cfg;
  cfg.min_df = 1;
  const auto m = TfIdfModel::fit(corpus(), cfg);
  const data::StringColumn docs{"the cat", "a dog ran"};
  const auto batch = m.transform(docs);
  for (std::size_t r = 0; r < docs.size(); ++r) {
    EXPECT_EQ(batch.row_vector(r), m.transform_one(docs[r]));
  }
}

TEST(TfIdf, SublinearTfDampensRepeats) {
  TfIdfConfig lin_cfg, sub_cfg;
  lin_cfg.min_df = sub_cfg.min_df = 1;
  lin_cfg.l2_normalize = sub_cfg.l2_normalize = false;
  sub_cfg.sublinear_tf = true;
  const auto lin = TfIdfModel::fit(corpus(), lin_cfg);
  const auto sub = TfIdfModel::fit(corpus(), sub_cfg);
  const auto idx = lin.term_index("cat");
  const auto vl = lin.transform_one("cat cat cat cat");
  const auto vs = sub.transform_one("cat cat cat cat");
  EXPECT_GT(vl.at(idx), vs.at(sub.term_index("cat")));
}

TEST(TfIdf, CharAnalyzerProducesFeatures) {
  TfIdfConfig cfg;
  cfg.analyzer = Analyzer::Char;
  cfg.ngrams = {2, 3};
  cfg.min_df = 1;
  const auto m = TfIdfModel::fit(corpus(), cfg);
  EXPECT_GT(m.vocabulary_size(), 10);
  EXPECT_GT(m.transform_one("the cat").nnz(), 0u);
}

TEST(TfIdf, OpValidatesInput) {
  TfIdfConfig cfg;
  cfg.min_df = 1;
  auto model = std::make_shared<TfIdfModel>(TfIdfModel::fit(corpus(), cfg));
  TfIdfOp op(model);
  const data::Value bad[] = {data::Value(data::Column(data::IntColumn{1}))};
  EXPECT_THROW(op.eval_batch(bad), std::invalid_argument);

  const data::Value good[] = {
      data::Value(data::Column(data::StringColumn{"the cat"}))};
  const auto out = op.eval_batch(good);
  EXPECT_TRUE(out.is_features());
  EXPECT_EQ(out.features().cols(),
            static_cast<std::size_t>(model->vocabulary_size()));
}

}  // namespace
}  // namespace willump::ops
