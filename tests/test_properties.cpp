// Property-based and parameterized invariant tests spanning modules:
// executor equivalence across batch sizes, cascade accuracy bounds across
// targets, top-K subset monotonicity across ck, and a model-based check of
// the LRU cache against a reference implementation.

#include <gtest/gtest.h>

#include <map>

#include "common/lru_cache.hpp"
#include "common/rng.hpp"
#include "core/optimizer.hpp"
#include "models/metrics.hpp"
#include "test_support.hpp"

namespace willump {
namespace {

// Shared fixture: one small toxic workload + both engines (test_support).
testing::ExecutorFixture& shared() { return testing::shared_toxic(); }

// ---------------------------------------------------------------------------
// Property: compiled and interpreted engines agree for every batch size.
// ---------------------------------------------------------------------------

class EngineEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineEquivalence, SameFeaturesAtEveryBatchSize) {
  auto& s = shared();
  const std::size_t n = GetParam();
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < n; ++i) idx.push_back(i);
  const auto batch = s.wl.test.inputs.select_rows(idx);

  const auto a = s.compiled->compute_matrix(batch);
  const auto b = s.interpreted->compute_matrix(batch);
  ASSERT_EQ(a.rows(), n);
  ASSERT_EQ(a.cols(), b.cols());
  const auto da = a.is_dense() ? a.dense() : a.sparse().to_dense();
  const auto db = b.is_dense() ? b.dense() : b.sparse().to_dense();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < da.cols(); ++c) {
      ASSERT_NEAR(da(r, c), db(r, c), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, EngineEquivalence,
                         ::testing::Values(0, 1, 2, 7, 64));

// ---------------------------------------------------------------------------
// Property: the cascade's validation accuracy respects every accuracy target.
// ---------------------------------------------------------------------------

class CascadeTargetBound : public ::testing::TestWithParam<double> {};

TEST_P(CascadeTargetBound, ValidationAccuracyWithinTarget) {
  auto& s = shared();
  core::CascadeConfig cfg;
  cfg.accuracy_target = GetParam();
  const auto cascade = core::CascadeTrainer::train(
      *s.compiled, *s.wl.pipeline.model_proto, s.wl.train, s.wl.valid, cfg);
  ASSERT_TRUE(cascade.enabled());
  EXPECT_GE(cascade.cascade_valid_accuracy,
            cascade.full_valid_accuracy - GetParam() - 1e-12);
  // Tighter targets never yield lower thresholds than looser ones would
  // accept; the threshold always stays on the 0.1 grid in [0.5, 1.0].
  const double t = cascade.threshold;
  EXPECT_GE(t, 0.5);
  EXPECT_LE(t, 1.0);
  EXPECT_NEAR(t * 10.0, std::round(t * 10.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Targets, CascadeTargetBound,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05));

// ---------------------------------------------------------------------------
// Property: top-K accuracy is non-decreasing in the subset multiplier ck.
// ---------------------------------------------------------------------------

class TopKSubsetMonotone : public ::testing::TestWithParam<double> {};

TEST_P(TopKSubsetMonotone, PrecisionGrowsWithCk) {
  auto& s = shared();
  const auto& cascade = s.cascade;  // default-config cascade from the fixture
  ASSERT_TRUE(cascade.enabled());

  const auto full_scores =
      cascade.full_model->predict(s.compiled->compute_matrix(s.wl.test.inputs));
  const auto exact = models::top_k_indices(full_scores, 20);

  auto precision_at_ck = [&](double ck) {
    core::TopKConfig cfg;
    cfg.ck = ck;
    cfg.min_subset_frac = 0.0;
    core::TopKPipeline p(s.compiled, cascade, cfg);
    return models::precision_at_k(p.top_k(s.wl.test.inputs, 20), exact);
  };

  const double ck = GetParam();
  // Precision at ck never beats precision with the whole batch (ck huge)
  // and never loses to pure filter ranking (ck == 1).
  const double p_ck = precision_at_ck(ck);
  const double p_all = precision_at_ck(1e9);
  const double p_one = precision_at_ck(1.0);
  EXPECT_DOUBLE_EQ(p_all, 1.0);
  EXPECT_LE(p_one, p_ck + 1e-12);
  EXPECT_LE(p_ck, p_all + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(CkValues, TopKSubsetMonotone,
                         ::testing::Values(2.0, 5.0, 10.0));

// ---------------------------------------------------------------------------
// Model-based test: LruCache behaves like a reference map + recency list
// under a random operation sequence, for several capacities.
// ---------------------------------------------------------------------------

class LruModelCheck : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LruModelCheck, MatchesReferenceModel) {
  const std::size_t capacity = GetParam();
  common::LruCache<int, int> cache(capacity);
  std::map<int, int> model;           // key -> value
  std::vector<int> recency;           // front = most recent

  auto touch = [&](int key) {
    auto it = std::find(recency.begin(), recency.end(), key);
    if (it != recency.end()) recency.erase(it);
    recency.insert(recency.begin(), key);
  };

  common::Rng rng(2024);
  for (int step = 0; step < 3000; ++step) {
    const int key = static_cast<int>(rng.next_below(20));
    if (rng.next_bernoulli(0.5)) {
      const int value = static_cast<int>(rng.next_below(1000));
      cache.put(key, value);
      model[key] = value;
      touch(key);
      if (capacity != 0 && model.size() > capacity) {
        const int victim = recency.back();
        recency.pop_back();
        model.erase(victim);
      }
    } else {
      const auto got = cache.get(key);
      const auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_FALSE(got.has_value()) << "step " << step;
      } else {
        ASSERT_TRUE(got.has_value()) << "step " << step;
        ASSERT_EQ(*got, it->second) << "step " << step;
        touch(key);
      }
    }
    ASSERT_EQ(cache.size(), model.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruModelCheck,
                         ::testing::Values(0, 1, 3, 8, 32));

}  // namespace
}  // namespace willump
