// Concurrency surface of the request-level serving engine: future-returning
// ThreadPool::submit, the bounded MPMC RequestQueue, the Server's adaptive
// micro-batching policy (flush-on-max-batch and flush-on-deadline), and
// thread-safe end-to-end caching under concurrent clients. This suite is
// labeled `concurrency` and runs under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "core/optimizer.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/thread_pool.hpp"
#include "serving/server.hpp"
#include "workloads/toxic.hpp"

namespace willump {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool::submit
// ---------------------------------------------------------------------------

TEST(ThreadPoolSubmit, DeliversResultThroughFuture) {
  runtime::ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolSubmit, PropagatesExceptionThroughFuture) {
  runtime::ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool stays usable afterwards.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolSubmit, ManyConcurrentSubmitters) {
  runtime::ThreadPool pool(3);
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<int>>> futures(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &futures, t] {
      for (int i = 0; i < 50; ++i) {
        futures[t].push_back(pool.submit([t, i] { return t * 1000 + i; }));
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(futures[t][static_cast<std::size_t>(i)].get(), t * 1000 + i);
    }
  }
}

TEST(ThreadPoolSubmit, QueuedTasksDrainAtDestruction) {
  std::vector<std::future<int>> futures;
  {
    runtime::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([i] { return i; }));
    }
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  }
}

TEST(ThreadPoolSubmit, CoexistsWithRunAll) {
  runtime::ThreadPool pool(2);
  auto f = pool.submit([] { return 7; });
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back([&counter] { ++counter; });
  pool.run_all(std::move(tasks));
  EXPECT_EQ(counter.load(), 10);
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolRunAll, ConcurrentCallersDoNotShareState) {
  runtime::ThreadPool pool(2);
  std::vector<std::thread> callers;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&pool, &ok, t] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<int> counter{0};
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 8; ++i) tasks.push_back([&counter] { ++counter; });
        if (t == 0 && round % 3 == 0) {
          // One caller also throws; its exception must not leak into the
          // other callers' run_all.
          tasks.push_back([] { throw std::runtime_error("mine"); });
          EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
        } else {
          pool.run_all(std::move(tasks));
        }
        if (counter.load() >= 8) ++ok;
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(ok.load(), 80);
}

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

TEST(RequestQueue, FifoOrder) {
  runtime::RequestQueue<int> q;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(RequestQueue, TryPushRespectsCapacity) {
  runtime::RequestQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(RequestQueue, PushBlocksUntilSpace) {
  runtime::RequestQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&q] { EXPECT_TRUE(q.push(2)); });
  EXPECT_EQ(q.pop(), 1);  // unblocks the producer
  producer.join();
  EXPECT_EQ(q.pop(), 2);
}

TEST(RequestQueue, CloseDrainsThenReportsExhaustion) {
  runtime::RequestQueue<int> q;
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // no new work after close
  EXPECT_EQ(q.pop(), 1);    // accepted work still drains
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(RequestQueue, CloseWakesBlockedConsumer) {
  runtime::RequestQueue<int> q;
  std::thread consumer([&q] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(RequestQueue, PopUntilTimesOutOnEmptyQueue) {
  runtime::RequestQueue<int> q;
  common::Timer t;
  EXPECT_EQ(q.pop_until(std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(20)),
            std::nullopt);
  EXPECT_GE(t.elapsed_seconds(), 0.010);
}

TEST(RequestQueue, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  runtime::RequestQueue<int> q(8);  // small bound: exercises back-pressure
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::vector<int>> got(3);
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&q, &got, c] {
      while (auto v = q.pop()) got[static_cast<std::size_t>(c)].push_back(*v);
    });
  }
  for (auto& p : producers) p.join();
  q.close();
  for (auto& c : consumers) c.join();

  std::vector<int> all;
  for (const auto& g : got) all.insert(all.end(), g.begin(), g.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)], i);  // each item exactly once
  }
}

// ---------------------------------------------------------------------------
// Server: adaptive micro-batching over a real optimized pipeline
// ---------------------------------------------------------------------------

struct EngineFixture {
  workloads::Workload wl;
  core::OptimizedPipeline pipeline;
};

/// Tiny Toxic workload with cascades on, built once per process. Small
/// enough that the suite stays fast under ThreadSanitizer.
EngineFixture& fixture() {
  static EngineFixture* f = [] {
    workloads::ToxicConfig cfg;
    cfg.seed = 303;
    cfg.sizes = {.train = 600, .valid = 250, .test = 250};
    cfg.word_tfidf_features = 500;
    cfg.char_tfidf_features = 800;
    auto wl = workloads::make_toxic(cfg);
    core::OptimizeOptions opts;
    opts.cascades = true;
    auto pipeline =
        core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
    return new EngineFixture{std::move(wl), std::move(pipeline)};
  }();
  return *f;
}

TEST(Server, SubmitMatchesDirectPrediction) {
  auto& f = fixture();
  serving::Server server(&f.pipeline, {});
  for (std::size_t r = 0; r < 5; ++r) {
    const auto row = f.wl.test.inputs.row(r);
    EXPECT_DOUBLE_EQ(server.submit(row).get(), f.pipeline.predict_one(row));
  }
  EXPECT_EQ(server.stats().queries, 5u);
}

TEST(Server, PredictBatchMatchesDirectPrediction) {
  auto& f = fixture();
  serving::Server server(&f.pipeline, {});
  const auto batch = f.wl.test.inputs.select_rows(
      std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7});
  const auto served = server.predict_batch(batch);
  const auto direct = f.pipeline.predict(batch);
  ASSERT_EQ(served.size(), direct.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_DOUBLE_EQ(served[i], direct[i]);
  }
  EXPECT_EQ(server.stats().batches, 1u);
  EXPECT_EQ(server.stats().largest_batch, 8u);
}

TEST(Server, FlushOnMaxBatch) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 2;
  cfg.max_delay_micros = 5e6;  // 5 s: only the size trigger can flush
  serving::Server server(&f.pipeline, cfg);

  std::vector<std::future<double>> futures;
  for (std::size_t r = 0; r < 4; ++r) {
    futures.push_back(server.submit(f.wl.test.inputs.row(r)));
  }
  common::Timer t;
  for (auto& fut : futures) (void)fut.get();
  // Completion long before the 5 s window proves the size trigger fired.
  EXPECT_LT(t.elapsed_seconds(), 4.0);
  const auto stats = server.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.rows, 4u);
  EXPECT_EQ(stats.largest_batch, 2u);
}

TEST(Server, FlushOnDeadline) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 64;           // never fills from one query
  cfg.max_delay_micros = 8e4;   // 80 ms flush window
  serving::Server server(&f.pipeline, cfg);

  common::Timer t;
  (void)server.submit(f.wl.test.inputs.row(0)).get();
  // A lone query cannot complete before its batch's flush deadline.
  EXPECT_GE(t.elapsed_seconds(), 0.05);
  const auto stats = server.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.largest_batch, 1u);
}

TEST(Server, ConcurrentClientsMatchSerialPredictions) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 8;
  serving::Server server(&f.pipeline, cfg);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 25;
  std::vector<std::vector<double>> got(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        const std::size_t r = c + q * kClients;
        got[c].push_back(server.submit(f.wl.test.inputs.row(r)).get());
      }
    });
  }
  for (auto& c : clients) c.join();

  // Row-wise determinism: whatever micro-batch a query landed in, its
  // prediction equals the serial one.
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t q = 0; q < kPerClient; ++q) {
      const std::size_t r = c + q * kClients;
      EXPECT_DOUBLE_EQ(got[c][q], f.pipeline.predict_one(f.wl.test.inputs.row(r)));
    }
  }
  EXPECT_EQ(server.stats().queries, kClients * kPerClient);
  EXPECT_EQ(server.stats().rows, kClients * kPerClient);
  EXPECT_EQ(server.stats().latency_samples, kClients * kPerClient);
}

TEST(Server, CacheHitsUnderConcurrentClients) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.enable_e2e_cache = true;
  serving::Server server(&f.pipeline, cfg);

  // Warm the cache serially so the concurrent phase is all hits.
  constexpr std::size_t kDistinct = 5;
  std::vector<double> expected;
  for (std::size_t r = 0; r < kDistinct; ++r) {
    expected.push_back(server.submit(f.wl.test.inputs.row(r)).get());
  }

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRounds = 10;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t q = 0; q < kRounds; ++q) {
        for (std::size_t r = 0; r < kDistinct; ++r) {
          const double got = server.submit(f.wl.test.inputs.row(r)).get();
          if (got != expected[r]) ++mismatches;
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = server.stats();
  EXPECT_EQ(stats.queries, kDistinct + kClients * kRounds * kDistinct);
  EXPECT_EQ(stats.cache_hits, kClients * kRounds * kDistinct);
  // Hits are answered before enqueue: the pipeline only ever saw the warmup.
  EXPECT_EQ(stats.rows, kDistinct);

  // Shutdown rejects even queries the cache could answer, and a rejected
  // query is not counted as served.
  server.shutdown();
  EXPECT_THROW((void)server.submit(f.wl.test.inputs.row(0)),
               runtime::QueueClosedError);
  EXPECT_EQ(server.stats().queries, stats.queries);
}

TEST(Server, ZeroWorkersExecutesInline) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 0;  // synchronous-only mode: no threads spawned
  serving::Server server(&f.pipeline, cfg);
  const auto row = f.wl.test.inputs.row(3);
  EXPECT_DOUBLE_EQ(server.submit(row).get(), f.pipeline.predict_one(row));
  EXPECT_EQ(server.stats().batches, 1u);
  server.shutdown();
  EXPECT_THROW((void)server.submit(row), runtime::QueueClosedError);
}

TEST(Server, FullyCachedBatchCountsNoPipelineExecution) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 0;
  cfg.enable_e2e_cache = true;
  serving::Server server(&f.pipeline, cfg);
  const auto batch =
      f.wl.test.inputs.select_rows(std::vector<std::size_t>{0, 1, 2});
  const auto first = server.predict_batch(batch);
  const auto second = server.predict_batch(batch);  // every row hits
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(second[i], first[i]);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 3u);
  EXPECT_EQ(stats.batches, 1u);  // the second call ran no pipeline batch
  EXPECT_EQ(stats.rows, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_rows(), 3.0);
}

TEST(Server, ShutdownDrainsAcceptedWorkAndRejectsNew) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 4;
  serving::Server server(&f.pipeline, cfg);

  std::vector<std::future<double>> futures;
  for (std::size_t r = 0; r < 3; ++r) {
    futures.push_back(server.submit(f.wl.test.inputs.row(r)));
  }
  server.shutdown();
  for (auto& fut : futures) {
    EXPECT_NO_THROW((void)fut.get());  // accepted work was drained
  }
  EXPECT_THROW((void)server.submit(f.wl.test.inputs.row(0)),
               runtime::QueueClosedError);
}

TEST(EndToEndCacheConcurrent, MixedGetPutFromManyThreads) {
  serving::EndToEndCache cache(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const auto key = static_cast<std::uint64_t>(i % 97);
        cache.put(key, static_cast<double>(key));
        if (auto hit = cache.get(key)) {
          EXPECT_DOUBLE_EQ(*hit, static_cast<double>(key));
        }
        (void)t;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace willump
