// Concurrency surface of the request-level serving engine: future-returning
// ThreadPool::submit, the bounded MPMC RequestQueue, and the multi-model
// registry Server — routing, per-model adaptive micro-batching
// (flush-on-max-batch and flush-on-deadline), AIMD max_batch tuning, the
// async (callback) completion path, work stealing across model shards,
// SLO-class priority/EDF scheduling (including the starvation /
// priority-inversion guarantee, asserted with the CI-based statistical
// criterion), replica groups (least-outstanding balancing, artifact
// cold-start, rolling swap under load), the consistent-hash Router, the
// overload pipeline (typed queue-full rejection with a no-blocked-producer
// watchdog, best-effort-shed-first ordering, expired-request drop under a
// machine-calibrated deadline, and a shed-under-open-loop run that loses
// no completion), runtime replica resizing (growth under live traffic,
// retire-on-drain under a saturating open loop with exactly-once
// completion reconciliation, the no-oscillation property of the autoscale
// policy over random stationary loads), the autoscaler controller thread,
// and thread-safe end-to-end caching under concurrent clients. This suite
// is labeled `concurrency` and runs under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/optimizer.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/thread_pool.hpp"
#include "serialize/artifact.hpp"
#include "serving/aimd.hpp"
#include "serving/autoscaler.hpp"
#include "serving/load_control.hpp"
#include "serving/router.hpp"
#include "serving/server.hpp"
#include "serving/slo.hpp"
#include "workloads/credit.hpp"
#include "workloads/toxic.hpp"
#include "workloads/traffic.hpp"

namespace willump {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool::submit
// ---------------------------------------------------------------------------

TEST(ThreadPoolSubmit, DeliversResultThroughFuture) {
  runtime::ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolSubmit, PropagatesExceptionThroughFuture) {
  runtime::ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool stays usable afterwards.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolSubmit, ManyConcurrentSubmitters) {
  runtime::ThreadPool pool(3);
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<int>>> futures(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &futures, t] {
      for (int i = 0; i < 50; ++i) {
        futures[t].push_back(pool.submit([t, i] { return t * 1000 + i; }));
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(futures[t][static_cast<std::size_t>(i)].get(), t * 1000 + i);
    }
  }
}

TEST(ThreadPoolSubmit, QueuedTasksDrainAtDestruction) {
  std::vector<std::future<int>> futures;
  {
    runtime::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([i] { return i; }));
    }
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  }
}

TEST(ThreadPoolSubmit, ZeroSpinBudgetStillDeliversWork) {
  // spin_rounds 0: workers park on the condition variable immediately; the
  // CV path alone must hand off every task.
  runtime::ThreadPool pool(2, /*spin_rounds=*/0);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(pool.submit([i] { return i; }));
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  }
}

TEST(ThreadPoolSubmit, CoexistsWithRunAll) {
  runtime::ThreadPool pool(2);
  auto f = pool.submit([] { return 7; });
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back([&counter] { ++counter; });
  pool.run_all(std::move(tasks));
  EXPECT_EQ(counter.load(), 10);
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolRunAll, ConcurrentCallersDoNotShareState) {
  runtime::ThreadPool pool(2);
  std::vector<std::thread> callers;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&pool, &ok, t] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<int> counter{0};
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 8; ++i) tasks.push_back([&counter] { ++counter; });
        if (t == 0 && round % 3 == 0) {
          // One caller also throws; its exception must not leak into the
          // other callers' run_all.
          tasks.push_back([] { throw std::runtime_error("mine"); });
          EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
        } else {
          pool.run_all(std::move(tasks));
        }
        if (counter.load() >= 8) ++ok;
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(ok.load(), 80);
}

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

TEST(RequestQueue, FifoOrder) {
  runtime::RequestQueue<int> q;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(RequestQueue, TryPushRespectsCapacity) {
  runtime::RequestQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(RequestQueue, TryPushForReturnsTypedResultAndKeepsItemOnFailure) {
  runtime::RequestQueue<int> q(1);
  int item = 1;
  EXPECT_EQ(q.try_push_for(item, std::chrono::milliseconds(0)),
            runtime::PushResult::kPushed);
  // Full queue, zero wait: immediate kFull, and the caller keeps the item
  // (the serving engine still owns its completion channel after a reject).
  int rejected = 2;
  EXPECT_EQ(q.try_push_for(rejected, std::chrono::milliseconds(0)),
            runtime::PushResult::kFull);
  EXPECT_EQ(rejected, 2);
  // Bounded wait: space appears inside the window and the push lands.
  std::thread consumer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(q.pop(), 1);
  });
  EXPECT_EQ(q.try_push_for(rejected, std::chrono::seconds(5)),
            runtime::PushResult::kPushed);
  consumer.join();
  EXPECT_EQ(q.pop(), 2);
}

TEST(RequestQueue, TryPushForBoundsTheWaitOnAFullQueue) {
  runtime::RequestQueue<int> q(1);
  int head = 7;
  ASSERT_EQ(q.try_push_for(head, std::chrono::milliseconds(0)),
            runtime::PushResult::kPushed);
  int item = 8;
  common::Timer t;
  EXPECT_EQ(q.try_push_for(item, std::chrono::milliseconds(30)),
            runtime::PushResult::kFull);
  const double waited = t.elapsed_seconds();
  EXPECT_GE(waited, 0.020);  // it did wait for space...
  EXPECT_LT(waited, 5.0);    // ...but returned, unlike the blocking push
  q.close();
  EXPECT_EQ(q.try_push_for(item, std::chrono::milliseconds(0)),
            runtime::PushResult::kClosed);
}

TEST(RequestQueue, DrainTakesUpToMaxInFifoOrder) {
  runtime::RequestQueue<int> q;
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.push(i));
  std::vector<int> out;
  EXPECT_EQ(q.drain(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.drain(out, 10), 2u);  // takes what is there
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(q.drain(out, 1), 0u);   // empty queue drains nothing
}

TEST(RequestQueue, DrainUnblocksProducers) {
  runtime::RequestQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  std::thread producer([&q] { EXPECT_TRUE(q.push(3)); });
  std::vector<int> out;
  while (q.drain(out, 4) == 0) std::this_thread::yield();
  producer.join();
  (void)q.drain(out, 4);
  EXPECT_EQ(out.size(), 3u);
}

TEST(RequestQueue, PushBlocksUntilSpace) {
  runtime::RequestQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&q] { EXPECT_TRUE(q.push(2)); });
  EXPECT_EQ(q.pop(), 1);  // unblocks the producer
  producer.join();
  EXPECT_EQ(q.pop(), 2);
}

TEST(RequestQueue, CloseDrainsThenReportsExhaustion) {
  runtime::RequestQueue<int> q;
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // no new work after close
  EXPECT_EQ(q.pop(), 1);    // accepted work still drains
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(RequestQueue, CloseWakesBlockedConsumer) {
  runtime::RequestQueue<int> q;
  std::thread consumer([&q] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(RequestQueue, PeekFrontReadsHeadWithoutDequeuing) {
  runtime::RequestQueue<int> q;
  EXPECT_EQ(q.peek_front([](const int& v) { return v; }), std::nullopt);
  ASSERT_TRUE(q.push(7));
  ASSERT_TRUE(q.push(8));
  // The peek projects the head (the priority-aware drain reads a deadline
  // this way) and leaves the queue untouched.
  EXPECT_EQ(q.peek_front([](const int& v) { return v * 10; }), 70);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.peek_front([](const int& v) { return v; }), 8);
}

TEST(RequestQueue, PopUntilTimesOutOnEmptyQueue) {
  runtime::RequestQueue<int> q;
  common::Timer t;
  EXPECT_EQ(q.pop_until(std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(20)),
            std::nullopt);
  EXPECT_GE(t.elapsed_seconds(), 0.010);
}

TEST(RequestQueue, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  runtime::RequestQueue<int> q(8);  // small bound: exercises back-pressure
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::vector<int>> got(3);
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&q, &got, c] {
      while (auto v = q.pop()) got[static_cast<std::size_t>(c)].push_back(*v);
    });
  }
  for (auto& p : producers) p.join();
  q.close();
  for (auto& c : consumers) c.join();

  std::vector<int> all;
  for (const auto& g : got) all.insert(all.end(), g.begin(), g.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)], i);  // each item exactly once
  }
}

// ---------------------------------------------------------------------------
// AIMD max_batch controller
// ---------------------------------------------------------------------------

TEST(AimdController, DisabledPinsCap) {
  serving::AimdBatchController c(16, serving::AimdConfig{});
  EXPECT_EQ(c.cap(), 16u);
  c.on_batch(16, /*batch_seconds=*/10.0);  // would be a gross violation
  EXPECT_EQ(c.cap(), 16u);
  EXPECT_EQ(c.counters().observations, 0u);
}

TEST(AimdController, GrowsAdditivelyWhileUnderSlo) {
  serving::AimdConfig cfg;
  cfg.enabled = true;
  cfg.slo_micros = 1e6;  // 1 s: nothing here violates it
  cfg.additive_step = 2;
  cfg.max_batch = 10;
  serving::AimdBatchController c(4, cfg);
  c.on_batch(4, 0.0001);
  EXPECT_EQ(c.cap(), 6u);
  c.on_batch(6, 0.0001);
  EXPECT_EQ(c.cap(), 8u);
  c.on_batch(8, 0.0001);
  c.on_batch(10, 0.0001);  // clamped at max_batch
  EXPECT_EQ(c.cap(), 10u);
  const auto counters = c.counters();
  EXPECT_EQ(counters.increases, 3u);  // the clamped step does not count
  EXPECT_EQ(counters.backoffs, 0u);
  EXPECT_EQ(counters.observations, 4u);
}

TEST(AimdController, BacksOffMultiplicativelyOnViolation) {
  serving::AimdConfig cfg;
  cfg.enabled = true;
  cfg.slo_micros = 100.0;
  cfg.backoff = 0.5;
  cfg.min_batch = 2;
  serving::AimdBatchController c(32, cfg);
  c.on_batch(32, /*batch_seconds=*/0.01);  // 10 ms >> 100 us
  EXPECT_EQ(c.cap(), 16u);
  c.on_batch(16, 0.01);
  EXPECT_EQ(c.cap(), 8u);
  c.on_batch(8, 0.01);
  c.on_batch(4, 0.01);
  EXPECT_EQ(c.cap(), 2u);  // clamped at min_batch
  c.on_batch(2, 0.01);
  EXPECT_EQ(c.cap(), 2u);
  const auto counters = c.counters();
  EXPECT_EQ(counters.backoffs, 4u);  // the clamped decrease does not count
  EXPECT_EQ(counters.increases, 0u);
}

TEST(AimdController, RecoversAfterBackoff) {
  serving::AimdConfig cfg;
  cfg.enabled = true;
  cfg.slo_micros = 1000.0;
  cfg.additive_step = 1;
  serving::AimdBatchController c(8, cfg);
  c.on_batch(8, 0.01);  // violation: 8 -> 4
  EXPECT_EQ(c.cap(), 4u);
  c.on_batch(4, 0.0001);  // under SLO again: probe upward
  c.on_batch(5, 0.0001);
  EXPECT_EQ(c.cap(), 6u);
}

// ---------------------------------------------------------------------------
// Server: multi-model registry over real optimized pipelines
// ---------------------------------------------------------------------------

struct EngineFixture {
  workloads::Workload wl;
  core::OptimizedPipeline pipeline;
};

/// Tiny Toxic workload with cascades on, built once per process. Small
/// enough that the suite stays fast under ThreadSanitizer.
EngineFixture& fixture() {
  static EngineFixture* f = [] {
    workloads::ToxicConfig cfg;
    cfg.seed = 303;
    cfg.sizes = {.train = 600, .valid = 250, .test = 250};
    cfg.word_tfidf_features = 500;
    cfg.char_tfidf_features = 800;
    auto wl = workloads::make_toxic(cfg);
    core::OptimizeOptions opts;
    opts.cascades = true;
    auto pipeline =
        core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
    return new EngineFixture{std::move(wl), std::move(pipeline)};
  }();
  return *f;
}

/// A second, cheap pipeline with a different schema (Credit regression,
/// local tables, no cascades): the registry's routing and misrouting tests
/// need two models whose predictions and input schemas differ.
EngineFixture& credit_fixture() {
  static EngineFixture* f = [] {
    workloads::CreditConfig cfg;
    cfg.seed = 505;
    cfg.sizes = {.train = 400, .valid = 150, .test = 200};
    auto wl = workloads::make_credit(cfg);
    auto pipeline =
        core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, {});
    return new EngineFixture{std::move(wl), std::move(pipeline)};
  }();
  return *f;
}

TEST(Server, SubmitMatchesDirectPrediction) {
  auto& f = fixture();
  serving::Server server(&f.pipeline, {});
  for (std::size_t r = 0; r < 5; ++r) {
    const auto row = f.wl.test.inputs.row(r);
    EXPECT_DOUBLE_EQ(server.submit(row).get(), f.pipeline.predict_one(row));
  }
  EXPECT_EQ(server.stats().queries, 5u);
  EXPECT_EQ(server.stats("default").queries, 5u);
}

TEST(Server, PredictBatchMatchesDirectPrediction) {
  auto& f = fixture();
  serving::Server server(&f.pipeline, {});
  const auto batch = f.wl.test.inputs.select_rows(
      std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7});
  const auto served = server.predict_batch(batch);
  const auto direct = f.pipeline.predict(batch);
  ASSERT_EQ(served.size(), direct.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_DOUBLE_EQ(served[i], direct[i]);
  }
  EXPECT_EQ(server.stats().batches, 1u);
  EXPECT_EQ(server.stats().largest_batch, 8u);
}

TEST(Server, FlushOnMaxBatch) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::ModelConfig model_cfg;
  model_cfg.max_batch = 2;
  model_cfg.max_delay_micros = 5e6;  // 5 s: only the size trigger can flush
  serving::Server server(&f.pipeline, cfg, model_cfg);

  std::vector<std::future<double>> futures;
  for (std::size_t r = 0; r < 4; ++r) {
    futures.push_back(server.submit(f.wl.test.inputs.row(r)));
  }
  common::Timer t;
  for (auto& fut : futures) (void)fut.get();
  // Completion long before the 5 s window proves the size trigger fired.
  EXPECT_LT(t.elapsed_seconds(), 4.0);
  const auto stats = server.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.rows, 4u);
  EXPECT_EQ(stats.largest_batch, 2u);
}

TEST(Server, FlushOnDeadline) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::ModelConfig model_cfg;
  model_cfg.max_batch = 64;          // never fills from one query
  model_cfg.max_delay_micros = 8e4;  // 80 ms flush window
  serving::Server server(&f.pipeline, cfg, model_cfg);

  common::Timer t;
  (void)server.submit(f.wl.test.inputs.row(0)).get();
  // A lone query cannot complete before its batch's flush deadline.
  EXPECT_GE(t.elapsed_seconds(), 0.05);
  const auto stats = server.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.largest_batch, 1u);
}

TEST(Server, ConcurrentClientsMatchSerialPredictions) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 2;
  serving::ModelConfig model_cfg;
  model_cfg.max_batch = 8;
  serving::Server server(&f.pipeline, cfg, model_cfg);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 25;
  std::vector<std::vector<double>> got(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        const std::size_t r = c + q * kClients;
        got[c].push_back(server.submit(f.wl.test.inputs.row(r)).get());
      }
    });
  }
  for (auto& c : clients) c.join();

  // Row-wise determinism: whatever micro-batch a query landed in, its
  // prediction equals the serial one.
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t q = 0; q < kPerClient; ++q) {
      const std::size_t r = c + q * kClients;
      EXPECT_DOUBLE_EQ(got[c][q], f.pipeline.predict_one(f.wl.test.inputs.row(r)));
    }
  }
  EXPECT_EQ(server.stats().queries, kClients * kPerClient);
  EXPECT_EQ(server.stats().rows, kClients * kPerClient);
  EXPECT_EQ(server.stats().latency_samples, kClients * kPerClient);
}

TEST(Server, CacheHitsUnderConcurrentClients) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 2;
  serving::ModelConfig model_cfg;
  model_cfg.enable_e2e_cache = true;
  serving::Server server(&f.pipeline, cfg, model_cfg);

  // Warm the cache serially so the concurrent phase is all hits.
  constexpr std::size_t kDistinct = 5;
  std::vector<double> expected;
  for (std::size_t r = 0; r < kDistinct; ++r) {
    expected.push_back(server.submit(f.wl.test.inputs.row(r)).get());
  }

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRounds = 10;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t q = 0; q < kRounds; ++q) {
        for (std::size_t r = 0; r < kDistinct; ++r) {
          const double got = server.submit(f.wl.test.inputs.row(r)).get();
          if (got != expected[r]) ++mismatches;
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = server.stats();
  EXPECT_EQ(stats.queries, kDistinct + kClients * kRounds * kDistinct);
  EXPECT_EQ(stats.cache_hits, kClients * kRounds * kDistinct);
  // Hits are answered before enqueue: the pipeline only ever saw the warmup.
  EXPECT_EQ(stats.rows, kDistinct);

  // Shutdown rejects even queries the cache could answer, and a rejected
  // query is not counted as served.
  server.shutdown();
  EXPECT_THROW((void)server.submit(f.wl.test.inputs.row(0)),
               runtime::QueueClosedError);
  EXPECT_EQ(server.stats().queries, stats.queries);
}

TEST(Server, ZeroWorkersExecutesInline) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 0;  // synchronous-only mode: no threads spawned
  serving::Server server(&f.pipeline, cfg);
  const auto row = f.wl.test.inputs.row(3);
  EXPECT_DOUBLE_EQ(server.submit(row).get(), f.pipeline.predict_one(row));
  EXPECT_EQ(server.stats().batches, 1u);
  server.shutdown();
  EXPECT_THROW((void)server.submit(row), runtime::QueueClosedError);
}

TEST(Server, FullyCachedBatchCountsNoPipelineExecution) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 0;
  serving::ModelConfig model_cfg;
  model_cfg.enable_e2e_cache = true;
  serving::Server server(&f.pipeline, cfg, model_cfg);
  const auto batch =
      f.wl.test.inputs.select_rows(std::vector<std::size_t>{0, 1, 2});
  const auto first = server.predict_batch(batch);
  const auto second = server.predict_batch(batch);  // every row hits
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(second[i], first[i]);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 3u);
  EXPECT_EQ(stats.batches, 1u);  // the second call ran no pipeline batch
  EXPECT_EQ(stats.rows, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_rows(), 3.0);
}

TEST(Server, ShutdownDrainsAcceptedWorkAndRejectsNew) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::ModelConfig model_cfg;
  model_cfg.max_batch = 4;
  serving::Server server(&f.pipeline, cfg, model_cfg);

  std::vector<std::future<double>> futures;
  for (std::size_t r = 0; r < 3; ++r) {
    futures.push_back(server.submit(f.wl.test.inputs.row(r)));
  }
  server.shutdown();
  for (auto& fut : futures) {
    EXPECT_NO_THROW((void)fut.get());  // accepted work was drained
  }
  EXPECT_THROW((void)server.submit(f.wl.test.inputs.row(0)),
               runtime::QueueClosedError);
}

// ---------------------------------------------------------------------------
// Server: registry semantics (registration, routing, misrouting)
// ---------------------------------------------------------------------------

TEST(ServerRegistry, RegistersAndListsModels) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::Server server;
  server.register_model("toxic", &tox.pipeline);
  server.register_model("credit", &cred.pipeline);
  EXPECT_EQ(server.model_names(),
            (std::vector<std::string>{"toxic", "credit"}));
  EXPECT_TRUE(server.has_model("toxic"));
  EXPECT_FALSE(server.has_model("music"));
  EXPECT_EQ(server.stats().models, 2u);
  EXPECT_EQ(server.stats("credit").model, "credit");
}

TEST(ServerRegistry, RejectsDuplicateUnknownAndLateRegistration) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::Server server;
  server.register_model("toxic", &tox.pipeline);
  EXPECT_THROW(server.register_model("toxic", &cred.pipeline),
               std::invalid_argument);
  EXPECT_THROW((void)server.submit("nope", tox.wl.test.inputs.row(0)),
               std::invalid_argument);
  // The first request starts serving and freezes the registry.
  (void)server.submit("toxic", tox.wl.test.inputs.row(0)).get();
  EXPECT_THROW(server.register_model("credit", &cred.pipeline),
               std::logic_error);
}

TEST(ServerRegistry, RoutesConcurrentClientsToTheRightPipeline) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 2;
  serving::Server server(cfg);
  serving::ModelConfig model_cfg;
  model_cfg.max_batch = 4;
  server.register_model("toxic", &tox.pipeline, model_cfg);
  server.register_model("credit", &cred.pipeline, model_cfg);

  constexpr std::size_t kPerClient = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        const auto row = tox.wl.test.inputs.row(2 * q + static_cast<std::size_t>(c));
        if (server.submit("toxic", row).get() != tox.pipeline.predict_one(row)) {
          ++mismatches;
        }
      }
    });
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        const auto row =
            cred.wl.test.inputs.row(2 * q + static_cast<std::size_t>(c));
        if (server.submit("credit", row).get() !=
            cred.pipeline.predict_one(row)) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  // Requests never execute against the wrong model's pipeline: every
  // prediction equals its own pipeline's serial answer, and the per-model
  // row counters account for exactly their own traffic.
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.stats("toxic").rows, 2 * kPerClient);
  EXPECT_EQ(server.stats("credit").rows, 2 * kPerClient);
}

TEST(ServerRegistry, MisroutedRowFailsItsOwnRequestOnly) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::Server server(cfg);
  server.register_model("toxic", &tox.pipeline);
  server.register_model("credit", &cred.pipeline);

  // A credit-schema row sent to the toxic model fails (its columns do not
  // exist there) — through its own future, without killing the worker.
  auto bad = server.submit("toxic", cred.wl.test.inputs.row(0));
  EXPECT_THROW((void)bad.get(), std::exception);
  const auto row = tox.wl.test.inputs.row(1);
  EXPECT_DOUBLE_EQ(server.submit("toxic", row).get(),
                   tox.pipeline.predict_one(row));
}

TEST(ServerRegistry, MisroutedRowDoesNotFailCoalescedBatchMates) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::ModelConfig model_cfg;
  model_cfg.max_batch = 3;
  model_cfg.max_delay_micros = 5e4;  // 50 ms window: the three coalesce
  serving::Server server(cfg);
  server.register_model("toxic", &tox.pipeline, model_cfg);
  server.register_model("credit", &cred.pipeline, model_cfg);

  // good, bad, good submitted back-to-back: whether or not they land in one
  // micro-batch, the malformed row fails alone and its batch-mates still
  // get their own predictions (the engine retries batch-mates individually
  // on a failed combined execution).
  auto good1 = server.submit("toxic", tox.wl.test.inputs.row(0));
  auto bad = server.submit("toxic", cred.wl.test.inputs.row(0));
  auto good2 = server.submit("toxic", tox.wl.test.inputs.row(1));
  EXPECT_DOUBLE_EQ(good1.get(),
                   tox.pipeline.predict_one(tox.wl.test.inputs.row(0)));
  EXPECT_THROW((void)bad.get(), std::exception);
  EXPECT_DOUBLE_EQ(good2.get(),
                   tox.pipeline.predict_one(tox.wl.test.inputs.row(1)));
}

TEST(ServerRegistry, NoStealingWithUncoveredModelIsRejected) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;      // only the first model would get a home worker
  cfg.work_stealing = false;
  serving::Server server(cfg);
  server.register_model("toxic", &tox.pipeline);
  server.register_model("credit", &cred.pipeline);
  // Starting to serve would strand credit's queue forever; the registry
  // rejects the configuration instead of hanging the first credit submit.
  EXPECT_THROW((void)server.submit("toxic", tox.wl.test.inputs.row(0)),
               std::logic_error);
}

TEST(ServerRegistry, MultiModelShutdownDrainsEveryQueue) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;  // one worker homes "toxic"; "credit" drains by steal
  serving::Server server(cfg);
  server.register_model("toxic", &tox.pipeline);
  server.register_model("credit", &cred.pipeline);

  std::vector<std::future<double>> futures;
  for (std::size_t r = 0; r < 3; ++r) {
    futures.push_back(server.submit("toxic", tox.wl.test.inputs.row(r)));
    futures.push_back(server.submit("credit", cred.wl.test.inputs.row(r)));
  }
  server.shutdown();
  for (auto& fut : futures) EXPECT_NO_THROW((void)fut.get());
  EXPECT_EQ(server.stats("toxic").rows, 3u);
  EXPECT_EQ(server.stats("credit").rows, 3u);
}

TEST(ServerRegistry, WorkStealingDrainsModelWithNoHomeWorker) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;  // the single worker homes the first model
  cfg.steal_quantum_micros = 200.0;
  serving::Server server(cfg);
  server.register_model("toxic", &tox.pipeline);
  server.register_model("credit", &cred.pipeline);

  std::vector<std::future<double>> futures;
  for (std::size_t r = 0; r < 5; ++r) {
    futures.push_back(server.submit("credit", cred.wl.test.inputs.row(r)));
  }
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(futures[r].get(),
                     cred.pipeline.predict_one(cred.wl.test.inputs.row(r)));
  }
  const auto stats = server.stats("credit");
  EXPECT_EQ(stats.rows, 5u);
  // Credit has no home worker, so every one of its batches was stolen.
  EXPECT_EQ(stats.stolen_batches, stats.batches);
  EXPECT_GT(stats.stolen_batches, 0u);
}

// ---------------------------------------------------------------------------
// Server: async (callback) completion path
// ---------------------------------------------------------------------------

TEST(ServerAsync, CallbackDeliversPrediction) {
  auto& f = fixture();
  serving::Server server(&f.pipeline, {});
  const auto row = f.wl.test.inputs.row(2);

  std::promise<double> got;
  server.submit("default", row,
                [&got](double prediction, std::exception_ptr error) {
                  ASSERT_EQ(error, nullptr);
                  got.set_value(prediction);
                });
  EXPECT_DOUBLE_EQ(got.get_future().get(), f.pipeline.predict_one(row));
  EXPECT_EQ(server.stats().latency_samples, 1u);
}

TEST(ServerAsync, CallbackDeliversErrorForBadRow) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::Server server(&tox.pipeline, {});

  std::promise<bool> errored;
  server.submit("default", cred.wl.test.inputs.row(0),
                [&errored](double, std::exception_ptr error) {
                  errored.set_value(error != nullptr);
                });
  EXPECT_TRUE(errored.get_future().get());
  // The engine survives the failed request.
  const auto row = tox.wl.test.inputs.row(0);
  EXPECT_DOUBLE_EQ(server.submit(row).get(), tox.pipeline.predict_one(row));
}

TEST(ServerAsync, CacheHitCompletesThroughCallback) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  serving::ModelConfig model_cfg;
  model_cfg.enable_e2e_cache = true;
  serving::Server server(&f.pipeline, cfg, model_cfg);
  const auto row = f.wl.test.inputs.row(4);
  const double expected = server.submit(row).get();  // warm the cache

  std::promise<double> got;
  server.submit(row, [&got](double prediction, std::exception_ptr error) {
    ASSERT_EQ(error, nullptr);
    got.set_value(prediction);
  });
  EXPECT_DOUBLE_EQ(got.get_future().get(), expected);
  EXPECT_EQ(server.stats().cache_hits, 1u);
  EXPECT_EQ(server.stats().rows, 1u);  // the hit never reached the pipeline
}

TEST(ServerAsync, ThrowingCallbackDoesNotKillTheWorker) {
  auto& f = fixture();
  serving::Server server(&f.pipeline, {});
  std::promise<void> fired;
  server.submit("default", f.wl.test.inputs.row(0),
                [&fired](double, std::exception_ptr) {
                  fired.set_value();
                  throw std::runtime_error("client bug");
                });
  fired.get_future().wait();
  // The worker that swallowed the throw still serves.
  const auto row = f.wl.test.inputs.row(1);
  EXPECT_DOUBLE_EQ(server.submit(row).get(), f.pipeline.predict_one(row));
}

// ---------------------------------------------------------------------------
// Server: AIMD batch-cap tuning end to end
// ---------------------------------------------------------------------------

TEST(ServerAimd, CapGrowsUnderLightLoad) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::ModelConfig model_cfg;
  model_cfg.max_batch = 4;  // initial cap
  model_cfg.aimd.enabled = true;
  model_cfg.aimd.slo_micros = 60e6;  // 60 s: no batch here violates it
  model_cfg.aimd.additive_step = 2;
  model_cfg.aimd.max_batch = 64;
  serving::Server server(&f.pipeline, cfg, model_cfg);

  ASSERT_EQ(server.current_max_batch("default"), 4u);
  // 40 sequential queries = 40 under-SLO batches: the cap climbs from 4 to
  // the 64 clamp ((64-4)/2 = 30 increases) and stays there.
  for (std::size_t q = 0; q < 40; ++q) {
    (void)server.submit(f.wl.test.inputs.row(q % 50)).get();
  }
  EXPECT_EQ(server.current_max_batch("default"), 64u);
  const auto stats = server.stats("default");
  EXPECT_EQ(stats.current_max_batch, 64u);
  EXPECT_EQ(stats.aimd_increases, 30u);
  EXPECT_EQ(stats.aimd_backoffs, 0u);
}

TEST(ServerAimd, CapBacksOffUnderSloViolations) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::ModelConfig model_cfg;
  model_cfg.max_batch = 32;  // initial cap, deliberately too high for the SLO
  model_cfg.aimd.enabled = true;
  // An SLO no real batch can meet: every execution is a violation, so the
  // controller must walk the cap down to min_batch.
  model_cfg.aimd.slo_micros = 0.001;
  model_cfg.aimd.backoff = 0.5;
  model_cfg.aimd.min_batch = 1;
  serving::Server server(&f.pipeline, cfg, model_cfg);

  for (std::size_t q = 0; q < 12; ++q) {
    (void)server.submit(f.wl.test.inputs.row(q % 50)).get();
  }
  EXPECT_EQ(server.current_max_batch("default"), 1u);
  const auto stats = server.stats("default");
  EXPECT_GT(stats.aimd_backoffs, 0u);
  EXPECT_EQ(stats.aimd_increases, 0u);
}

TEST(ServerAimd, DisabledCapStaysFixed) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::ModelConfig model_cfg;
  model_cfg.max_batch = 16;
  serving::Server server(&f.pipeline, cfg, model_cfg);
  for (std::size_t q = 0; q < 8; ++q) {
    (void)server.submit(f.wl.test.inputs.row(q)).get();
  }
  EXPECT_EQ(server.current_max_batch("default"), 16u);
  EXPECT_EQ(server.stats("default").aimd_increases, 0u);
}

// ---------------------------------------------------------------------------
// Hot-reload: swap_model under live traffic
// ---------------------------------------------------------------------------

TEST(ServerHotReload, SwapUnderLoadDropsNoRequestAndServesBothVersions) {
  auto& f = fixture();
  // Second pipeline version of the same workload, compiled without
  // cascades: same schema, different (full-model-only) predictions.
  static core::OptimizedPipeline* plain = [] {
    auto& fx = fixture();
    return new core::OptimizedPipeline(core::WillumpOptimizer::optimize(
        fx.wl.pipeline, fx.wl.train, fx.wl.valid, {}));
  }();

  serving::ServerConfig cfg;
  cfg.num_workers = 2;
  serving::Server server(cfg);
  serving::ModelConfig mc;
  mc.max_batch = 4;
  server.register_model("m", &f.pipeline, mc);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 60;
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const auto row = f.wl.test.inputs.row((c * kPerClient + i) %
                                              f.wl.test.inputs.num_rows());
        try {
          const double p = server.submit("m", row).get();
          // Every prediction must be one of the two versions' answers —
          // never a torn or mixed result.
          const double old_p = f.pipeline.predict_one(row);
          const double new_p = plain->predict_one(row);
          if (p != old_p && p != new_p) ++errors;
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          ++errors;
        }
      }
    });
  }
  // Swap back and forth while the clients hammer the queue.
  for (int s = 0; s < 6; ++s) {
    server.swap_model(
        "m", std::shared_ptr<const core::OptimizedPipeline>(
                 s % 2 == 0 ? plain : &f.pipeline,
                 [](const core::OptimizedPipeline*) {}));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& t : clients) t.join();
  server.shutdown();
  EXPECT_EQ(completed.load(), kClients * kPerClient);
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(server.stats("m").queries, kClients * kPerClient);
}

TEST(ServerHotReload, SwapInvalidatesEndToEndCache) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::Server server(cfg);
  serving::ModelConfig mc;
  mc.enable_e2e_cache = true;
  server.register_model("m", &f.pipeline, mc);

  const auto row = f.wl.test.inputs.row(0);
  (void)server.submit("m", row).get();
  (void)server.submit("m", row).get();
  EXPECT_EQ(server.stats("m").cache_hits, 1u);

  // After the swap the cached prediction belongs to the retired version and
  // must not be served.
  static core::OptimizedPipeline* plain = [] {
    auto& fx = fixture();
    return new core::OptimizedPipeline(core::WillumpOptimizer::optimize(
        fx.wl.pipeline, fx.wl.train, fx.wl.valid, {}));
  }();
  server.swap_model("m", std::shared_ptr<const core::OptimizedPipeline>(
                             plain, [](const core::OptimizedPipeline*) {}));
  EXPECT_EQ(server.submit("m", row).get(), plain->predict_one(row));
  server.shutdown();
}

TEST(ServerHotReload, SwapUnknownModelThrows) {
  auto& f = fixture();
  serving::Server server(serving::ServerConfig{.num_workers = 0});
  server.register_model("m", &f.pipeline);
  EXPECT_THROW(
      server.swap_model("ghost",
                        std::shared_ptr<const core::OptimizedPipeline>(
                            &f.pipeline, [](const core::OptimizedPipeline*) {})),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SLO classes: ordering, derived AIMD targets, deadline accounting
// ---------------------------------------------------------------------------

TEST(SloClass, OrdersByPriorityThenEarliestDeadline) {
  const auto now = std::chrono::steady_clock::now();
  const serving::ScheduleKey high{10, now + std::chrono::seconds(5)};
  const serving::ScheduleKey low_soon{-10, now};
  const serving::ScheduleKey std_soon{0, now + std::chrono::milliseconds(1)};
  const serving::ScheduleKey std_late{0, now + std::chrono::seconds(1)};
  // Priority dominates: a high-class request with a far deadline still
  // beats a low-class request already due.
  EXPECT_TRUE(serving::before(high, low_soon));
  EXPECT_TRUE(serving::before(high, std_soon));
  // Equal priority: earliest absolute deadline first.
  EXPECT_TRUE(serving::before(std_soon, std_late));
  EXPECT_FALSE(serving::before(std_late, std_soon));
}

TEST(SloClass, DerivedBatchTargetIsAFractionOfTheDeadline) {
  serving::SloClass c;
  c.deadline_micros = 10'000.0;
  c.batch_slo_fraction = 0.5;
  EXPECT_DOUBLE_EQ(c.batch_slo_micros(), 5'000.0);
  c.batch_slo_fraction = 2.0;  // clamped to 1: a batch never gets more than
                               // the whole deadline
  EXPECT_DOUBLE_EQ(c.batch_slo_micros(), 10'000.0);
  EXPECT_GT(serving::SloClass::latency_critical().priority,
            serving::SloClass::standard().priority);
  EXPECT_GT(serving::SloClass::standard().priority,
            serving::SloClass::best_effort().priority);
}

TEST(ServerSlo, RejectsNonPositiveDeadline) {
  auto& f = fixture();
  serving::Server server;
  serving::ModelConfig cfg;
  cfg.slo.deadline_micros = 0.0;
  EXPECT_THROW(server.register_model("m", &f.pipeline, cfg),
               std::invalid_argument);
}

TEST(ServerSlo, DeadlineAttainmentCounters) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::ModelConfig mc;
  mc.slo.deadline_micros = 60e6;  // 60 s: every completion meets it
  serving::Server server(&f.pipeline, cfg, mc);
  for (std::size_t q = 0; q < 6; ++q) {
    (void)server.submit(f.wl.test.inputs.row(q)).get();
  }
  const auto stats = server.stats("default");
  EXPECT_EQ(stats.latency_samples, 6u);
  EXPECT_EQ(stats.deadline_hits, 6u);
  EXPECT_DOUBLE_EQ(stats.deadline_attainment(), 1.0);
}

TEST(ServerAimd, BatchTargetDerivesFromClassDeadline) {
  auto& f = fixture();
  // aimd.slo_micros stays 0 (derive): a microscopic class deadline makes
  // every real batch a violation, so the controller must walk the cap to
  // min_batch — proof the deadline, not a hand-set target, is in charge.
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::ModelConfig tight;
  tight.max_batch = 32;
  tight.slo.deadline_micros = 0.002;  // 2 ns deadline -> 1 us derived floor
  tight.aimd.enabled = true;
  serving::Server tight_server(&f.pipeline, cfg, tight);
  for (std::size_t q = 0; q < 12; ++q) {
    (void)tight_server.submit(f.wl.test.inputs.row(q % 50)).get();
  }
  EXPECT_EQ(tight_server.current_max_batch("default"), 1u);
  EXPECT_GT(tight_server.stats("default").aimd_backoffs, 0u);

  // A relaxed deadline derives a generous batch target: the cap only grows.
  serving::ModelConfig relaxed;
  relaxed.max_batch = 4;
  relaxed.slo.deadline_micros = 120e6;  // 2 min deadline -> 60 s batch target
  relaxed.aimd.enabled = true;
  relaxed.aimd.max_batch = 64;
  serving::Server relaxed_server(&f.pipeline, cfg, relaxed);
  for (std::size_t q = 0; q < 12; ++q) {
    (void)relaxed_server.submit(f.wl.test.inputs.row(q % 50)).get();
  }
  EXPECT_GT(relaxed_server.current_max_batch("default"), 4u);
  EXPECT_EQ(relaxed_server.stats("default").aimd_backoffs, 0u);
}

// The starvation / priority-inversion guarantee: a saturating best-effort
// open-loop stream must not push a latency-critical model's completions
// past its deadline. One worker makes the schedule maximally contended —
// FIFO/home-shard scheduling would park the high-class queue behind the
// entire best-effort backlog, while priority/EDF dequeue bounds the
// high-class wait by one in-flight batch. Asserted with the repo's
// CI-based statistical criterion (accuracy_within_ci95), not a hard-coded
// latency bound, so scheduler noise and sanitizer slowdowns are absorbed
// by the binomial confidence interval rather than a fudge factor.
TEST(ServerSlo, SaturatingBestEffortDoesNotStarveLatencyCritical) {
  auto& low = fixture();          // toxic: the expensive best-effort model
  auto& high = credit_fixture();  // credit: the cheap latency-critical model

  // Calibrate the deadline to this machine (and sanitizer): the
  // non-preemptive bound is one in-flight best-effort batch plus the
  // high-class batch itself; give it ~30 batch-times of headroom.
  const std::size_t low_batch_cap = 8;
  common::Timer calib;
  (void)low.pipeline.predict(low.wl.test.inputs.select_rows(
      std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  const double low_batch_seconds = std::max(1e-4, calib.elapsed_seconds());
  const double deadline_micros =
      std::max(0.3e6, 30.0 * low_batch_seconds * 1e6);

  serving::ServerConfig cfg;
  cfg.num_workers = 1;  // every batch contends for the same worker
  serving::Server server(cfg);
  serving::ModelConfig high_cfg;
  high_cfg.slo = serving::SloClass::latency_critical(deadline_micros);
  high_cfg.max_batch = 8;
  serving::ModelConfig low_cfg;
  low_cfg.slo = serving::SloClass::best_effort();
  low_cfg.max_batch = low_batch_cap;
  server.register_model("credit-rt", &high.pipeline, high_cfg);
  server.register_model("toxic-batch", &low.pipeline, low_cfg);

  // Saturate: offer the mixed Poisson stream at ~3x the best-effort
  // model's serial capacity, 85% of it best-effort traffic.
  const double low_row_seconds =
      low_batch_seconds / static_cast<double>(low_batch_cap);
  const double offered_qps = 3.0 / low_row_seconds;
  std::vector<workloads::ModelTraffic> mix(2);
  mix[0] = {.model = "credit-rt", .wl = &high.wl, .zipf_s = 0.0,
            .weight = 0.15, .clients = 0, .deadline_micros = deadline_micros};
  mix[1] = {.model = "toxic-batch", .wl = &low.wl, .zipf_s = 0.0,
            .weight = 0.85, .clients = 0, .deadline_micros = 0.0};
  const auto res =
      workloads::run_mixed_open_loop(server, mix, 320, offered_qps, 0xC1A55);
  server.shutdown();

  const auto& high_res = res.per_model[0].second;
  const auto& low_res = res.per_model[1].second;
  ASSERT_GT(high_res.completed, 20u);
  EXPECT_EQ(res.aggregate.errors, 0u);
  EXPECT_EQ(res.aggregate.completed, 320u);  // saturation drops nothing

  // p99 within deadline, statistically: attainment must be consistent
  // with a 0.99 hit rate at this sample size (paper §6.3 acceptance rule).
  const double att = high_res.attainment();
  EXPECT_TRUE(att >= 0.99 ||
              common::accuracy_within_ci95(att, 0.99, high_res.completed))
      << "latency-critical attainment " << att << " over "
      << high_res.completed << " queries (deadline "
      << deadline_micros / 1e3 << " ms, p99 "
      << high_res.latency.p99 * 1e3 << " ms)";
  // The best-effort stream was genuinely saturating, not idle filler.
  EXPECT_GT(low_res.completed, 150u);
}

// ---------------------------------------------------------------------------
// LoadController: the online latency/queue model behind admission control
// and predictive replica sizing. Fed synthetic timestamps so the queueing
// math is asserted deterministically, independent of machine speed.
// ---------------------------------------------------------------------------

TEST(LoadController, ColdModelAdmitsEverythingAndKeepsCurrentReplicas) {
  serving::LoadControlConfig cfg;
  cfg.enabled = true;
  serving::LoadController lc(cfg, /*deadline_micros=*/1e4);
  EXPECT_FALSE(lc.warmed_up());
  // A cold estimator has a wide CI: it must never self-shed or resize.
  EXPECT_TRUE(lc.admit(/*queue_depth=*/1000, /*replicas=*/1));
  EXPECT_FALSE(lc.overloaded(1));
  EXPECT_EQ(lc.recommended_replicas(3), 3u);
}

TEST(LoadController, EstimatorsTrackServiceTimeAndArrivalRate) {
  serving::LoadControlConfig cfg;
  serving::LoadController lc(cfg, 1e4);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 50; ++i) {
    lc.on_arrival(t0 + std::chrono::milliseconds(i));  // 1 kHz arrivals
    lc.on_batch(8, 8e-4);                              // 100 us per row
  }
  EXPECT_TRUE(lc.warmed_up());
  EXPECT_NEAR(lc.service_seconds_per_row(), 1e-4, 1e-6);
  EXPECT_NEAR(lc.arrival_qps(), 1000.0, 50.0);
}

// The replica-sizing decision uses the CI-based statistical criterion
// against the attainment target, not a hard threshold: one replica at
// rho = 2 is statistically hopeless (grow), and a near-idle stream passes
// at one replica even from a four-replica group (shrink).
TEST(LoadController, RecommendsGrowthUnderOverloadAndShrinkWhenIdle) {
  serving::LoadControlConfig cfg;
  serving::LoadController hot(cfg, /*deadline_micros=*/1e4);  // 10 ms
  const auto t0 = std::chrono::steady_clock::now();
  // 100 us/row service at 20k rows/s offered: rho = 2 at one replica,
  // comfortable (rho ~ 0.67, sojourn far under deadline) at three.
  for (int i = 0; i < 50; ++i) {
    hot.on_arrival(t0 + std::chrono::microseconds(50 * i));
    hot.on_batch(8, 8e-4);
  }
  EXPECT_TRUE(hot.overloaded(1));
  const std::size_t grown = hot.recommended_replicas(1);
  EXPECT_GT(grown, 1u);
  EXPECT_LE(grown, cfg.max_replicas);
  EXPECT_FALSE(hot.overloaded(grown));  // the recommendation is sufficient

  serving::LoadController idle(cfg, 1e4);
  for (int i = 0; i < 50; ++i) {
    idle.on_arrival(t0 + std::chrono::milliseconds(10 * i));  // 100 qps
    idle.on_batch(8, 8e-4);
  }
  EXPECT_FALSE(idle.overloaded(1));
  EXPECT_EQ(idle.recommended_replicas(4), 1u);
}

// ---------------------------------------------------------------------------
// Overload pipeline: admission control, typed shedding, expiry drop
// ---------------------------------------------------------------------------

// A full bounded queue must reject, not block: the old blocking push could
// park a producer indefinitely behind a saturated model. Occupy the
// engine's only worker inside another model's coalescing window, burst
// more submits than the victim's queue holds, and watchdog-assert the
// producer never blocked while every submit still resolved exactly once.
TEST(ServerOverload, QueueFullRejectsInsteadOfBlockingSubmit) {
  auto& victim_f = fixture();
  auto& blocker_f = credit_fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::Server server(cfg);
  serving::ModelConfig blocker_cfg;
  blocker_cfg.max_batch = 64;          // never fills from one query
  blocker_cfg.max_delay_micros = 8e5;  // 800 ms coalescing window
  server.register_model("blocker", &blocker_f.pipeline, blocker_cfg);
  serving::ModelConfig victim_cfg;
  victim_cfg.queue_capacity = 2;
  victim_cfg.max_batch = 1;
  server.register_model("victim", &victim_f.pipeline, victim_cfg);

  // Park the sole worker inside the blocker's flush window.
  auto parked = server.submit("blocker", blocker_f.wl.test.inputs.row(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  // Burst 6 submits at a capacity-2 queue. The old behavior blocked here
  // until the worker drained the queue (~550 ms away); the fixed path
  // returns immediately with typed rejections for the overflow.
  common::Timer watchdog;
  std::vector<std::future<double>> futures;
  for (std::size_t q = 0; q < 6; ++q) {
    futures.push_back(server.submit("victim", victim_f.wl.test.inputs.row(q)));
  }
  EXPECT_LT(watchdog.elapsed_seconds(), 1.0) << "submit blocked the producer";

  std::size_t ok = 0;
  std::size_t queue_full = 0;
  for (auto& fut : futures) {
    try {
      (void)fut.get();
      ++ok;
    } catch (const serving::RejectedError& e) {
      EXPECT_EQ(e.reason(), serving::RejectReason::kQueueFull);
      EXPECT_EQ(e.model(), "victim");
      ++queue_full;
    }
  }
  (void)parked.get();
  server.shutdown();
  EXPECT_EQ(ok + queue_full, 6u);  // every submit resolved exactly once
  EXPECT_EQ(ok, 2u);               // the two that fit the queue completed
  EXPECT_EQ(queue_full, 4u);
  EXPECT_EQ(server.stats("victim").shed_queue_full, 4u);
}

// Shed-lowest-class-first ordering: sustained SLO violations on a
// latency-critical model (its AIMD controller's pressure signal) make a
// load-controlled best-effort model shed its own traffic with the typed
// kShedBestEffort reason — while the critical class itself stays admitted.
TEST(ServerOverload, BestEffortShedsFirstWhenCriticalClassIsUnderPressure) {
  auto& crit = credit_fixture();
  auto& be = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::Server server(cfg);
  serving::ModelConfig crit_cfg;
  // 2 ns deadline: every real batch violates the derived AIMD target, so
  // the controller reports sustained pressure after two batches.
  crit_cfg.slo = serving::SloClass::latency_critical(0.002);
  crit_cfg.aimd.enabled = true;
  server.register_model("credit-rt", &crit.pipeline, crit_cfg);
  serving::ModelConfig be_cfg;
  be_cfg.slo = serving::SloClass::best_effort();
  be_cfg.load_control.enabled = true;
  server.register_model("toxic-be", &be.pipeline, be_cfg);

  // No pressure yet: best-effort traffic completes normally.
  (void)server.submit("toxic-be", be.wl.test.inputs.row(0)).get();

  // Drive the critical model into sustained violation.
  for (std::size_t q = 0; q < 6; ++q) {
    (void)server.submit("credit-rt", crit.wl.test.inputs.row(q)).get();
  }

  // Now best-effort is shed with the typed reason...
  bool shed = false;
  try {
    (void)server.submit("toxic-be", be.wl.test.inputs.row(1)).get();
  } catch (const serving::RejectedError& e) {
    shed = true;
    EXPECT_EQ(e.reason(), serving::RejectReason::kShedBestEffort);
    EXPECT_EQ(e.model(), "toxic-be");
  }
  EXPECT_TRUE(shed);
  // ...while the critical class itself is still admitted and served.
  const auto crit_row = crit.wl.test.inputs.row(7);
  EXPECT_DOUBLE_EQ(server.submit("credit-rt", crit_row).get(),
                   crit.pipeline.predict_one(crit_row));
  server.shutdown();

  const auto be_stats = server.stats("toxic-be");
  EXPECT_EQ(be_stats.shed_best_effort, 1u);
  EXPECT_EQ(be_stats.completions, 1u);  // the pre-pressure query
  EXPECT_EQ(server.stats("credit-rt").shed_best_effort, 0u);
  EXPECT_EQ(server.stats().shed, 1u);
}

// Dead-on-arrival requests are dropped with kExpired before claiming a
// replica, and counted as attainment misses exactly once. The deadline is
// calibrated to this machine (and sanitizer): well above one pipeline
// execution — an unloaded engine would trivially meet it — but well below
// the window the worker is parked for, so expiry at dequeue is certain.
TEST(ServerOverload, ExpiredRequestsDropBeforeExecution) {
  auto& victim_f = fixture();
  auto& blocker_f = credit_fixture();

  common::Timer calib;
  (void)victim_f.pipeline.predict_one(victim_f.wl.test.inputs.row(0));
  const double exec_seconds = std::max(1e-4, calib.elapsed_seconds());
  const double deadline_micros = std::max(0.1e6, 10.0 * exec_seconds * 1e6);
  const double window_micros = 8.0 * deadline_micros;

  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::Server server(cfg);
  serving::ModelConfig blocker_cfg;
  blocker_cfg.max_batch = 64;
  blocker_cfg.max_delay_micros = window_micros;
  server.register_model("blocker", &blocker_f.pipeline, blocker_cfg);
  serving::ModelConfig victim_cfg;
  victim_cfg.slo = serving::SloClass::latency_critical(deadline_micros);
  victim_cfg.max_batch = 1;
  victim_cfg.load_control.enabled = true;
  server.register_model("victim", &victim_f.pipeline, victim_cfg);

  auto parked = server.submit("blocker", blocker_f.wl.test.inputs.row(0));
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::micro>(window_micros / 4));

  // These join the queue with >= 3/4 of the window still to wait — several
  // deadlines past due by the time the worker dequeues them.
  std::vector<std::future<double>> futures;
  for (std::size_t q = 0; q < 3; ++q) {
    futures.push_back(server.submit("victim", victim_f.wl.test.inputs.row(q)));
  }

  std::size_t expired = 0;
  for (auto& fut : futures) {
    try {
      (void)fut.get();
    } catch (const serving::RejectedError& e) {
      EXPECT_EQ(e.reason(), serving::RejectReason::kExpired);
      ++expired;
    }
  }
  (void)parked.get();
  server.shutdown();
  EXPECT_EQ(expired, 3u);
  const auto stats = server.stats("victim");
  EXPECT_EQ(stats.expired, 3u);
  EXPECT_EQ(stats.completions, 0u);
  EXPECT_EQ(stats.deadline_hits, 0u);
  EXPECT_EQ(stats.latency_samples, 3u);  // each miss recorded exactly once
  EXPECT_DOUBLE_EQ(stats.attainment(), 0.0);
  EXPECT_EQ(stats.batches, 0u);  // dropped before any execution
}

// Zero-latency cache hits land in the same per-class outcome rows as
// executed completions, so ModelStats::attainment() divides hits by a
// denominator that is consistent across the cached and executed paths.
TEST(ServerOverload, CacheHitCountsInAttainmentDenominator) {
  auto& f = fixture();
  serving::ModelConfig mc;
  mc.enable_e2e_cache = true;
  mc.slo.deadline_micros = 60e6;  // every completion meets it
  serving::Server server(&f.pipeline, {}, mc);
  const auto row = f.wl.test.inputs.row(2);
  (void)server.submit(row).get();  // executed
  (void)server.submit(row).get();  // zero-latency cache hit
  const auto stats = server.stats("default");
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.completions, 2u);
  EXPECT_EQ(stats.deadline_hits, 2u);
  EXPECT_EQ(stats.latency_samples, 2u);
  EXPECT_DOUBLE_EQ(stats.attainment(), 1.0);
}

// Shed-under-open-loop, in the tsan suite: a saturating Poisson stream
// against a bounded, load-controlled model must lose no completion. Every
// submit resolves exactly once (prediction, typed shed, or expiry), no
// submit blocks past the watchdog, the engine genuinely sheds instead of
// queueing without bound, and the replica-sizing recommendation reflects
// the overload.
TEST(ServerOverload, ShedUnderOpenLoopLosesNoCompletion) {
  auto& f = fixture();
  common::Timer calib;
  (void)f.pipeline.predict(f.wl.test.inputs.select_rows(
      std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  const double batch_seconds = std::max(1e-4, calib.elapsed_seconds());
  const double row_seconds = batch_seconds / 8.0;
  const double deadline_micros = std::max(0.2e6, 20.0 * batch_seconds * 1e6);

  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::ModelConfig mc;
  mc.slo = serving::SloClass::latency_critical(deadline_micros);
  mc.max_batch = 8;
  mc.queue_capacity = 16;
  mc.load_control.enabled = true;
  serving::Server server(&f.pipeline, cfg, mc);

  std::vector<workloads::ModelTraffic> mix(1);
  mix[0] = {.model = "default", .wl = &f.wl, .zipf_s = 0.0, .weight = 1.0,
            .clients = 0, .deadline_micros = deadline_micros};
  constexpr std::size_t kQueries = 240;
  const double offered_qps = 4.0 / row_seconds;  // ~4x serial capacity
  const auto res =
      workloads::run_mixed_open_loop(server, mix, kQueries, offered_qps, 0x5EED);
  server.shutdown();

  const auto& agg = res.aggregate;
  EXPECT_EQ(agg.completed + agg.errors + agg.rejected + agg.expired, kQueries);
  EXPECT_EQ(agg.errors, 0u);  // overload is typed, never an execution error
  EXPECT_GT(agg.completed, 0u);
  EXPECT_GT(agg.rejected + agg.expired, 0u);  // 4x overload must shed
  EXPECT_LT(agg.max_submit_seconds, 1.0);     // no blocked producer

  // Client-side and engine-side accounting agree outcome for outcome.
  const auto stats = server.stats("default");
  EXPECT_EQ(stats.completions + stats.expired + stats.total_shed(), kQueries);
  EXPECT_EQ(agg.completed, stats.completions);
  EXPECT_EQ(agg.rejected, stats.total_shed());
  EXPECT_EQ(agg.expired, stats.expired);
}

// ---------------------------------------------------------------------------
// Replica groups: balancing, artifact cold start, rolling swap under load
// ---------------------------------------------------------------------------

TEST(ReplicaGroup, RegistersCountsAndGrowsAtRuntime) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::Server server(cfg);
  serving::ModelConfig mc;
  mc.replicas = 2;
  server.register_model("m", &f.pipeline, mc);
  EXPECT_EQ(server.replica_count("m"), 2u);
  server.add_replica("m", server.pipeline_snapshot("m"));
  EXPECT_EQ(server.replica_count("m"), 3u);
  EXPECT_THROW(server.replica_count("ghost"), std::invalid_argument);

  // Unlike registration (frozen by the first request), the replica group
  // stays runtime-mutable — it is the autoscaler's actuation surface. The
  // no-argument overload clones the live pipeline's parts (no registered
  // artifact here), and the new slot serves identical predictions.
  (void)server.submit("m", f.wl.test.inputs.row(0)).get();
  server.add_replica("m");
  EXPECT_EQ(server.replica_count("m"), 4u);
  const auto row = f.wl.test.inputs.row(1);
  EXPECT_DOUBLE_EQ(server.submit("m", row).get(), f.pipeline.predict_one(row));

  const auto stats = server.stats("m");
  EXPECT_EQ(stats.replicas, 4u);
  // Only post-start growth is a *resize*; pre-start setup is not.
  EXPECT_EQ(stats.scale_ups, 1u);
  EXPECT_EQ(stats.scale_downs, 0u);
  EXPECT_EQ(stats.draining, 0u);
}

TEST(ReplicaGroup, RetireBelowOneReplicaThrows) {
  auto& f = fixture();
  serving::Server server(serving::ServerConfig{.num_workers = 0});
  server.register_model("m", &f.pipeline);
  EXPECT_THROW(server.retire_replica("m"), std::logic_error);
  EXPECT_THROW(server.retire_replica("ghost"), std::invalid_argument);
  EXPECT_EQ(server.replica_count("m"), 1u);
}

// Retire-on-drain under saturating open-loop traffic, in the tsan suite:
// shrinking the group 3 -> 1 while a Poisson stream overloads the engine
// must lose no completion — every submit resolves exactly once
// (prediction, typed shed, or expiry), the drained replicas are freed once
// their in-flight batches resolve, and client-side and engine-side
// accounting reconcile outcome for outcome. Mirrors
// ServerOverload.ShedUnderOpenLoopLosesNoCompletion with the resize storm
// layered on top.
TEST(ReplicaGroup, RetireUnderOpenLoopDrainsAndLosesNoCompletion) {
  auto& f = fixture();
  common::Timer calib;
  (void)f.pipeline.predict(f.wl.test.inputs.select_rows(
      std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  const double batch_seconds = std::max(1e-4, calib.elapsed_seconds());
  const double row_seconds = batch_seconds / 8.0;
  const double deadline_micros = std::max(0.2e6, 20.0 * batch_seconds * 1e6);

  serving::ServerConfig cfg;
  cfg.num_workers = 2;
  serving::ModelConfig mc;
  mc.slo = serving::SloClass::latency_critical(deadline_micros);
  mc.max_batch = 8;
  mc.queue_capacity = 16;
  mc.load_control.enabled = true;
  mc.replicas = 3;
  serving::Server server(&f.pipeline, cfg, mc);

  std::vector<workloads::ModelTraffic> mix(1);
  mix[0] = {.model = "default", .wl = &f.wl, .zipf_s = 0.0, .weight = 1.0,
            .clients = 0, .deadline_micros = deadline_micros};
  constexpr std::size_t kQueries = 240;
  const double offered_qps = 4.0 / row_seconds;  // ~4x serial capacity

  // Retire two replicas mid-stream, spaced across the run.
  std::thread retirer([&] {
    const auto pause =
        std::chrono::duration<double>(kQueries / offered_qps / 4.0);
    for (int r = 0; r < 2; ++r) {
      std::this_thread::sleep_for(pause);
      server.retire_replica("default");
    }
  });
  const auto res =
      workloads::run_mixed_open_loop(server, mix, kQueries, offered_qps, 0xD12A);
  retirer.join();

  EXPECT_EQ(server.replica_count("default"), 1u);
  // Every submit has resolved, so the drained replicas' outstanding batches
  // are done; their last references release as workers finish. Poll with a
  // generous deadline rather than assuming instant release.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.draining_replicas("default") != 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.draining_replicas("default"), 0u);
  server.shutdown();

  const auto& agg = res.aggregate;
  EXPECT_EQ(agg.completed + agg.errors + agg.rejected + agg.expired, kQueries);
  EXPECT_EQ(agg.errors, 0u);  // a draining replica is never an error path
  EXPECT_GT(agg.completed, 0u);
  EXPECT_LT(agg.max_submit_seconds, 1.0);  // no blocked producer

  const auto stats = server.stats("default");
  EXPECT_EQ(stats.completions + stats.expired + stats.total_shed(), kQueries);
  EXPECT_EQ(agg.completed, stats.completions);
  EXPECT_EQ(agg.rejected, stats.total_shed());
  EXPECT_EQ(agg.expired, stats.expired);
  EXPECT_EQ(stats.scale_downs, 2u);
  EXPECT_EQ(stats.replicas, 1u);
  EXPECT_EQ(stats.draining, 0u);
  // Retired slots keep their all-time row totals (grow-only accounting).
  ASSERT_EQ(stats.replica_rows.size(), 3u);
  std::size_t per_slot = 0;
  for (const auto rows : stats.replica_rows) per_slot += rows;
  EXPECT_EQ(per_slot, stats.rows);
}

// Property-style check of the autoscale policy's convergence: for ANY
// stationary load (constant snapshot), the resize sequence is eventually
// constant — the CI band between the scale-up and scale-down criteria is
// the hysteresis that forbids oscillation, and attainment's monotonicity
// in the replica count makes every trajectory monotone (a shrink to k-1
// required the lower bound at k-1 to pass, so the upper bound at k-1 also
// passes and can never immediately re-arm a grow; symmetrically for
// grows). Seeded-RNG sweep over service-time / arrival-rate / deadline
// mixes and random starting sizes.
TEST(AutoscalePolicyProperty, StationaryLoadResizesEventuallyConstant) {
  std::mt19937_64 rng(0xA5CA1E5u);
  std::uniform_real_distribution<double> service_dist(1e-5, 5e-3);
  std::uniform_real_distribution<double> qps_dist(10.0, 5000.0);
  std::uniform_real_distribution<double> deadline_mult(2.0, 50.0);

  for (int trial = 0; trial < 60; ++trial) {
    serving::AutoscaleConfig cfg;
    cfg.enabled = true;
    cfg.min_replicas = 1;
    cfg.max_replicas = 8;
    cfg.scale_up_streak = 3;
    cfg.cooldown_micros = 0.0;  // worst case: nothing slows the controller
    cfg.min_observations = 1;
    serving::AutoscalePolicy policy(cfg);

    serving::LoadSnapshot snap;
    snap.service_seconds_per_row = service_dist(rng);
    snap.arrival_qps = qps_dist(rng);
    snap.deadline_seconds = snap.service_seconds_per_row * deadline_mult(rng);
    snap.rows = 5000;
    snap.batches = 100;
    snap.target_attainment = 0.99;

    std::size_t replicas = 1 + static_cast<std::size_t>(rng() % 8);
    constexpr int kEvals = 200;
    std::size_t resizes = 0;
    std::size_t late_resizes = 0;  // resizes in the second half
    auto t = std::chrono::steady_clock::time_point{};
    for (int i = 0; i < kEvals; ++i) {
      t += std::chrono::milliseconds(20);
      const auto action = policy.evaluate(snap, replicas, t);
      if (action == serving::AutoscaleAction::kGrow) {
        ++replicas;
      } else if (action == serving::AutoscaleAction::kShrink) {
        --replicas;
      } else {
        continue;
      }
      ++resizes;
      if (i >= kEvals / 2) ++late_resizes;
    }
    const std::string ctx =
        "trial=" + std::to_string(trial) +
        " service=" + std::to_string(snap.service_seconds_per_row) +
        " qps=" + std::to_string(snap.arrival_qps) +
        " deadline=" + std::to_string(snap.deadline_seconds) +
        " final_replicas=" + std::to_string(replicas);
    EXPECT_EQ(late_resizes, 0u) << ctx;
    EXPECT_GE(replicas, cfg.min_replicas) << ctx;
    EXPECT_LE(replicas, cfg.max_replicas) << ctx;
    // Monotone trajectories: at most the full travel across [min, max].
    EXPECT_LE(resizes, cfg.max_replicas - cfg.min_replicas) << ctx;
  }
}

// The embedded controller thread: enabling ServerConfig::autoscale spawns
// it with the first serving start, it never resizes a cold or idle model,
// and shutdown joins it (idempotently). The convergence behavior of the
// full closed loop under a load step is asserted statistically by
// bench_serving_throughput --trend, not here.
TEST(Autoscale, ControllerThreadHoldsColdAndIdleModels) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  cfg.autoscale.enabled = true;
  cfg.autoscale.interval_micros = 500.0;
  serving::ModelConfig mc;
  mc.load_control.enabled = true;
  serving::Server server(&f.pipeline, cfg, mc);
  for (std::size_t r = 0; r < 4; ++r) {
    (void)server.submit(f.wl.test.inputs.row(r)).get();
  }
  // Give the controller a few intervals: 4 batches is below the default
  // min_observations, and even once warm an idle single replica is already
  // at min_replicas — either way the group must not move.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(server.replica_count("default"), 1u);
  const auto stats = server.stats("default");
  EXPECT_EQ(stats.scale_ups, 0u);
  EXPECT_EQ(stats.scale_downs, 0u);
  server.shutdown();
  server.shutdown();  // second join is a no-op
}

TEST(ReplicaGroup, BalancesBatchesAcrossReplicas) {
  auto& f = fixture();
  serving::ServerConfig cfg;
  cfg.num_workers = 2;
  serving::ModelConfig mc;
  mc.replicas = 2;
  mc.max_batch = 4;
  serving::Server server(cfg);
  server.register_model("m", &f.pipeline, mc);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        const auto row = f.wl.test.inputs.row((c * kPerClient + q) %
                                              f.wl.test.inputs.num_rows());
        if (server.submit("m", row).get() != f.pipeline.predict_one(row)) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const auto stats = server.stats("m");
  EXPECT_EQ(stats.rows, kClients * kPerClient);
  ASSERT_EQ(stats.replica_rows.size(), 2u);
  // Least-outstanding balancing (with rotating ties) spreads the batches:
  // neither slot serves everything.
  EXPECT_GT(stats.replica_rows[0], 0u);
  EXPECT_GT(stats.replica_rows[1], 0u);
  EXPECT_EQ(stats.replica_rows[0] + stats.replica_rows[1], stats.rows);
}

TEST(ReplicaGroup, ColdStartsReplicaFromArtifact) {
  auto& f = fixture();
  const auto dir = std::filesystem::temp_directory_path() /
                   "willump-test-replica-artifacts";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "toxic.wlmp").string();
  serialize::save_pipeline(f.pipeline, path);

  serving::ServerConfig cfg;
  cfg.num_workers = 1;
  serving::Server server(cfg);
  server.register_model("m", &f.pipeline);
  server.add_replica("m", path);  // deserialized instance joins the group
  EXPECT_EQ(server.replica_count("m"), 2u);
  EXPECT_THROW(server.add_replica("m", path + ".missing"),
               serialize::SerializeError);

  // Artifact round trips are bit-exact, so whichever replica serves a row
  // the prediction equals the in-process pipeline's.
  for (std::size_t r = 0; r < 8; ++r) {
    const auto row = f.wl.test.inputs.row(r);
    EXPECT_DOUBLE_EQ(server.submit("m", row).get(),
                     f.pipeline.predict_one(row));
  }

  // A model loaded from an artifact remembers its path
  // (ModelConfig::artifact_path), so the no-argument add_replica — the
  // autoscaler's scale-up actuation — cold-starts from disk.
  serving::ServerConfig cfg2;
  cfg2.num_workers = 1;
  serving::Server loaded(cfg2);
  loaded.load_model("m", path);
  loaded.add_replica("m");
  EXPECT_EQ(loaded.replica_count("m"), 2u);
  const auto row = f.wl.test.inputs.row(3);
  EXPECT_DOUBLE_EQ(loaded.submit("m", row).get(), f.pipeline.predict_one(row));
}

TEST(ReplicaGroup, RollingSwapUnderLoadDropsNoRequest) {
  auto& f = fixture();
  static core::OptimizedPipeline* plain = [] {
    auto& fx = fixture();
    return new core::OptimizedPipeline(core::WillumpOptimizer::optimize(
        fx.wl.pipeline, fx.wl.train, fx.wl.valid, {}));
  }();

  serving::ServerConfig cfg;
  cfg.num_workers = 2;
  serving::Server server(cfg);
  serving::ModelConfig mc;
  mc.replicas = 2;
  mc.max_batch = 4;
  server.register_model("m", &f.pipeline, mc);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 50;
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> errors{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const auto row = f.wl.test.inputs.row((c * kPerClient + i) %
                                              f.wl.test.inputs.num_rows());
        try {
          const double p = server.submit("m", row).get();
          // During a rolling upgrade both versions legitimately serve; a
          // prediction must still be exactly one version's answer.
          if (p != f.pipeline.predict_one(row) && p != plain->predict_one(row)) {
            ++errors;
          }
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          ++errors;
        }
      }
    });
  }
  // Roll the group one replica at a time, repeatedly, while it serves.
  for (int round = 0; round < 6; ++round) {
    const auto next = std::shared_ptr<const core::OptimizedPipeline>(
        round % 2 == 0 ? plain : &f.pipeline,
        [](const core::OptimizedPipeline*) {});
    for (std::size_t rep = 0; rep < 2; ++rep) {
      server.swap_replica("m", rep, next);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  for (auto& t : clients) t.join();
  server.shutdown();
  EXPECT_EQ(completed.load(), kClients * kPerClient);
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(server.stats("m").queries, kClients * kPerClient);
}

TEST(ReplicaGroup, SwapReplicaOutOfRangeThrows) {
  auto& f = fixture();
  serving::Server server(serving::ServerConfig{.num_workers = 0});
  server.register_model("m", &f.pipeline);
  EXPECT_THROW(
      server.swap_replica("m", 5,
                          std::shared_ptr<const core::OptimizedPipeline>(
                              &f.pipeline, [](const core::OptimizedPipeline*) {})),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Router: consistent-hash placement, forwarding, lifecycle
// ---------------------------------------------------------------------------

TEST(Router, PlacementIsDeterministicAndSpreads) {
  serving::RouterConfig cfg;
  cfg.num_shards = 4;
  serving::Router a(cfg);
  serving::Router b(cfg);
  std::vector<bool> used(4, false);
  for (int i = 0; i < 64; ++i) {
    const std::string name = "model-" + std::to_string(i);
    const std::size_t shard = a.shard_of(name);
    ASSERT_LT(shard, 4u);
    // Placement is a pure function of the name and ring: identical across
    // router instances (and therefore across processes and restarts).
    EXPECT_EQ(shard, b.shard_of(name));
    used[shard] = true;
  }
  // 64 names over 4 shards: consistent hashing uses the whole fleet.
  EXPECT_TRUE(used[0] && used[1] && used[2] && used[3]);
}

TEST(Router, RoutesAndForwardsCompletions) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::RouterConfig cfg;
  cfg.num_shards = 2;
  cfg.shard.num_workers = 1;
  serving::Router router(cfg);
  router.register_model("toxic", &tox.pipeline);
  router.register_model("credit", &cred.pipeline);
  EXPECT_EQ(router.model_names(),
            (std::vector<std::string>{"toxic", "credit"}));
  EXPECT_TRUE(router.has_model("toxic"));
  EXPECT_FALSE(router.has_model("ghost"));

  // Future path: predictions match each model's own pipeline.
  for (std::size_t r = 0; r < 5; ++r) {
    const auto trow = tox.wl.test.inputs.row(r);
    const auto crow = cred.wl.test.inputs.row(r);
    EXPECT_DOUBLE_EQ(router.submit("toxic", trow).get(),
                     tox.pipeline.predict_one(trow));
    EXPECT_DOUBLE_EQ(router.submit("credit", crow).get(),
                     cred.pipeline.predict_one(crow));
  }
  // Async path: the completion is forwarded through the router's wrapper.
  std::promise<double> got;
  const auto row = tox.wl.test.inputs.row(7);
  router.submit("toxic", row,
                [&got](double prediction, std::exception_ptr error) {
                  ASSERT_EQ(error, nullptr);
                  got.set_value(prediction);
                });
  EXPECT_DOUBLE_EQ(got.get_future().get(), tox.pipeline.predict_one(row));

  const auto stats = router.stats();
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_EQ(stats.models, 2u);
  EXPECT_EQ(stats.routed_queries, 11u);
  EXPECT_EQ(stats.forwarded_completions, 1u);
  EXPECT_EQ(stats.forwarded_errors, 0u);
  EXPECT_EQ(stats.serving.queries, 11u);
  // Per-model stats come from the owning shard.
  EXPECT_EQ(router.stats("toxic").queries, 6u);
  EXPECT_EQ(router.stats("credit").queries, 5u);
  // The placed shard hosts the model; the other shard does not.
  EXPECT_TRUE(router.shard(router.shard_of("toxic")).has_model("toxic"));
}

TEST(Router, RejectsDuplicateUnknownAndLateRegistration) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::RouterConfig cfg;
  cfg.num_shards = 2;
  serving::Router router(cfg);
  router.register_model("toxic", &tox.pipeline);
  EXPECT_THROW(router.register_model("toxic", &cred.pipeline),
               std::invalid_argument);
  EXPECT_THROW((void)router.submit("ghost", tox.wl.test.inputs.row(0)),
               std::invalid_argument);
  (void)router.submit("toxic", tox.wl.test.inputs.row(0)).get();
  EXPECT_THROW(router.register_model("credit", &cred.pipeline),
               std::logic_error);
  router.shutdown();
  EXPECT_THROW((void)router.submit("toxic", tox.wl.test.inputs.row(0)),
               runtime::QueueClosedError);
}

TEST(Router, MixedOpenLoopTrafficAcrossShards) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::RouterConfig cfg;
  cfg.num_shards = 2;
  cfg.shard.num_workers = 1;
  serving::Router router(cfg);
  serving::ModelConfig mc;
  mc.max_batch = 4;
  router.register_model("toxic", &tox.pipeline, mc);
  router.register_model("credit", &cred.pipeline, mc);

  std::vector<workloads::ModelTraffic> mix(2);
  mix[0] = {.model = "toxic", .wl = &tox.wl, .zipf_s = 0.0, .weight = 0.5,
            .clients = 0, .deadline_micros = 60e6};
  mix[1] = {.model = "credit", .wl = &cred.wl, .zipf_s = 0.0, .weight = 0.5,
            .clients = 0, .deadline_micros = 60e6};
  constexpr std::size_t kQueries = 80;
  const auto res =
      workloads::run_mixed_open_loop(router, mix, kQueries, 400.0, 0x70F3);
  router.shutdown();

  EXPECT_EQ(res.aggregate.completed, kQueries);
  EXPECT_EQ(res.aggregate.errors, 0u);
  const auto stats = router.stats();
  EXPECT_EQ(stats.routed_queries, kQueries);
  EXPECT_EQ(stats.forwarded_completions, kQueries);
  EXPECT_EQ(stats.forwarded_errors, 0u);
  // Client-side attainment against a 60 s deadline is trivially total —
  // this checks the per-class accounting plumbing, not the scheduler.
  EXPECT_EQ(res.per_model[0].second.deadline_hits,
            res.per_model[0].second.completed);
}

TEST(Router, ForwardsAutoscaleConfigAndAggregatesResizeCounters) {
  auto& tox = fixture();
  auto& cred = credit_fixture();
  serving::RouterConfig cfg;
  cfg.num_shards = 2;
  cfg.shard.num_workers = 1;
  cfg.shard.autoscale.enabled = true;
  cfg.shard.autoscale.max_replicas = 4;
  cfg.shard.autoscale.interval_micros = 50'000.0;
  serving::Router router(cfg);
  // Every shard engine receives the autoscale knobs verbatim, so each runs
  // its own controller over the models it owns.
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_TRUE(router.shard(s).config().autoscale.enabled);
    EXPECT_EQ(router.shard(s).config().autoscale.max_replicas, 4u);
    EXPECT_DOUBLE_EQ(router.shard(s).config().autoscale.interval_micros,
                     50'000.0);
  }

  router.register_model("toxic", &tox.pipeline);
  router.register_model("credit", &cred.pipeline);
  (void)router.submit("toxic", tox.wl.test.inputs.row(0)).get();
  (void)router.submit("credit", cred.wl.test.inputs.row(0)).get();

  // Runtime resizes forward to the owning shard; the fleet aggregate sums
  // the per-shard counters regardless of where each model landed.
  router.add_replica("toxic");
  router.add_replica("credit");
  EXPECT_EQ(router.replica_count("toxic"), 2u);
  EXPECT_EQ(router.replica_count("credit"), 2u);
  router.retire_replica("toxic");
  EXPECT_EQ(router.replica_count("toxic"), 1u);
  EXPECT_THROW(router.retire_replica("ghost"), std::invalid_argument);

  EXPECT_EQ(router.stats("toxic").scale_ups, 1u);
  EXPECT_EQ(router.stats("toxic").scale_downs, 1u);
  EXPECT_EQ(router.stats("credit").scale_ups, 1u);
  const auto stats = router.stats();
  EXPECT_EQ(stats.serving.scale_ups, 2u);
  EXPECT_EQ(stats.serving.scale_downs, 1u);

  // Nothing was in flight, so the retired replica releases immediately;
  // poll briefly for the worker to drop its last reference.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.draining_replicas("toxic") != 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(router.draining_replicas("toxic"), 0u);
  EXPECT_EQ(router.stats().serving.draining, 0u);
  router.shutdown();
}

// ---------------------------------------------------------------------------
// EndToEndCache under concurrency
// ---------------------------------------------------------------------------

TEST(EndToEndCacheConcurrent, MixedGetPutFromManyThreads) {
  serving::EndToEndCache cache(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const auto key = static_cast<std::uint64_t>(i % 97);
        cache.put(key, static_cast<double>(key));
        if (auto hit = cache.get(key)) {
          EXPECT_DOUBLE_EQ(*hit, static_cast<double>(key));
        }
        (void)t;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace willump
