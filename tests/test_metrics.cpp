#include "models/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace willump::models {
namespace {

TEST(Metrics, Accuracy) {
  const std::vector<double> p{0.9, 0.2, 0.6, 0.4};
  const std::vector<double> y{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(accuracy(p, y), 0.75);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
}

TEST(Metrics, Mse) {
  const std::vector<double> p{1.0, 2.0};
  const std::vector<double> y{0.0, 4.0};
  EXPECT_DOUBLE_EQ(mse(p, y), (1.0 + 4.0) / 2.0);
}

TEST(Metrics, R2PerfectIsOne) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r2(y, y), 1.0);
}

TEST(Metrics, R2MeanPredictorIsZero) {
  const std::vector<double> p{2.0, 2.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_NEAR(r2(p, y), 0.0, 1e-12);
}

TEST(Metrics, AucPerfectSeparation) {
  const std::vector<double> s{0.1, 0.2, 0.8, 0.9};
  const std::vector<double> y{0.0, 0.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(auc(s, y), 1.0);
}

TEST(Metrics, AucRandomIsHalf) {
  const std::vector<double> s{0.5, 0.5, 0.5, 0.5};
  const std::vector<double> y{0.0, 1.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(auc(s, y), 0.5);
}

TEST(Metrics, AucDegenerateLabels) {
  const std::vector<double> s{0.1, 0.9};
  const std::vector<double> y{1.0, 1.0};
  EXPECT_DOUBLE_EQ(auc(s, y), 0.5);
}

TEST(Metrics, TopKIndicesOrderedByScore) {
  const std::vector<double> s{0.1, 0.9, 0.5, 0.7};
  const auto top = top_k_indices(s, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
}

TEST(Metrics, TopKClampsToSize) {
  const std::vector<double> s{0.1, 0.2};
  EXPECT_EQ(top_k_indices(s, 10).size(), 2u);
}

TEST(Metrics, TopKTieBreaksByIndex) {
  const std::vector<double> s{0.5, 0.5, 0.5};
  const auto top = top_k_indices(s, 2);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(Metrics, PrecisionAtK) {
  const std::vector<std::size_t> pred{1, 2, 3, 4};
  const std::vector<std::size_t> truth{2, 4, 6, 8};
  EXPECT_DOUBLE_EQ(precision_at_k(pred, truth), 0.5);
  EXPECT_DOUBLE_EQ(precision_at_k({}, truth), 0.0);
}

TEST(Metrics, MapPerfectOrder) {
  const std::vector<std::size_t> pred{7, 8, 9};
  const std::vector<std::size_t> truth{7, 8, 9};
  EXPECT_DOUBLE_EQ(mean_average_precision(pred, truth), 1.0);
}

TEST(Metrics, MapPenalizesLateHits) {
  const std::vector<std::size_t> early{7, 1, 2};
  const std::vector<std::size_t> late{1, 2, 7};
  const std::vector<std::size_t> truth{7};
  EXPECT_GT(mean_average_precision(early, truth),
            mean_average_precision(late, truth));
}

TEST(Metrics, AverageValue) {
  const std::vector<std::size_t> pred{0, 2};
  const std::vector<double> scores{1.0, 100.0, 3.0};
  EXPECT_DOUBLE_EQ(average_value(pred, scores), 2.0);
}

}  // namespace
}  // namespace willump::models
