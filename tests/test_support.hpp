#pragma once

// Shared fixtures for the GoogleTest suites.
//
// Training a workload's cascade is by far the most expensive thing a suite
// does, so the repeated workload + executor + cascade setup lives here and
// each binary builds it at most once (function-local statics). Every factory
// seeds its workload explicitly: a parallel `ctest -j` run must be
// reproducible run-to-run regardless of suite scheduling.
//
// On top of the per-binary statics sits an on-disk trained-fixture cache
// (directory from $WILLUMP_FIXTURE_CACHE, set per test by CMake): the first
// binary to need a workload's trained state saves it as a serialization
// artifact, and every later binary — including every later ctest run —
// deserializes instead of re-training. Keys combine the fixture tag, the
// workload seed, the artifact format version, and a fingerprint of the
// workload's generated data, so editing a workload generator or bumping the
// format invalidates stale entries instead of silently serving them. Any
// artifact failure (missing, truncated, corrupted, version-mismatched)
// falls back to training; the cache can be deleted at any time.

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.hpp"
#include "core/cascades.hpp"
#include "core/executors.hpp"
#include "core/ifv_analysis.hpp"
#include "core/optimizer.hpp"
#include "serialize/artifact.hpp"
#include "workloads/credit.hpp"
#include "workloads/product.hpp"
#include "workloads/toxic.hpp"

namespace willump::testing {

// Explicit workload seeds. These match the config defaults on purpose: the
// point is that no suite depends on a default silently changing.
inline constexpr std::uint64_t kToxicSeed = 202;
inline constexpr std::uint64_t kProductSeed = 101;
inline constexpr std::uint64_t kCreditSeed = 404;

/// Config of the small Toxic workload the shared fixtures use.
inline workloads::ToxicConfig small_toxic_config() {
  workloads::ToxicConfig cfg;
  cfg.seed = kToxicSeed;
  cfg.sizes = {.train = 1500, .valid = 700, .test = 700};
  return cfg;
}

/// Small Toxic classification workload (cascade-friendly easy/hard mixture).
inline workloads::Workload small_toxic() {
  return workloads::make_toxic(small_toxic_config());
}

/// Small Product classification workload with shrunk TF-IDF vocabularies.
inline workloads::Workload small_product() {
  workloads::ProductConfig cfg;
  cfg.seed = kProductSeed;
  cfg.sizes = {.train = 1200, .valid = 500, .test = 600};
  cfg.word_tfidf_features = 600;
  cfg.char_tfidf_features = 900;
  return workloads::make_product(cfg);
}

/// Small Credit regression workload with remote feature tables: gives the
/// cost model the lookup-dominated structure top-K filtering exploits
/// (paper Table 4 setup).
inline workloads::Workload small_credit_remote() {
  workloads::CreditConfig cfg;
  cfg.seed = kCreditSeed;
  cfg.sizes = {.train = 1500, .valid = 600, .test = 1000};
  auto wl = workloads::make_credit(cfg);
  wl.tables->set_network(workloads::default_remote_network());
  return wl;
}

/// Directory of the on-disk trained-fixture cache. Empty path disables
/// caching (set WILLUMP_FIXTURE_CACHE="" to force re-training everywhere).
inline std::filesystem::path fixture_cache_dir() {
  if (const char* env = std::getenv("WILLUMP_FIXTURE_CACHE")) {
    return std::filesystem::path(env);
  }
  return std::filesystem::path("willump-fixture-cache");
}

/// Fingerprint of a workload's generated data: if a generator's output
/// changes (code edit, size change), cached trained state keyed on the old
/// fingerprint simply misses instead of being served stale. Inputs matter
/// as much as targets — several generators draw the label first and derive
/// the raw input from it, so a generator edit can leave every target
/// bit-identical while changing the text/features the model trains on.
inline std::uint64_t workload_fingerprint(const workloads::Workload& wl) {
  std::uint64_t h = common::fnv1a(wl.name);
  h = common::hash_combine(h, wl.train.targets.size());
  h = common::hash_combine(h, wl.valid.targets.size());
  h = common::hash_combine(h, wl.train.inputs.num_columns());
  const std::size_t probe = std::min<std::size_t>(wl.train.targets.size(), 64);
  for (std::size_t i = 0; i < probe; ++i) {
    h = common::hash_combine(h,
                             std::bit_cast<std::uint64_t>(wl.train.targets[i]));
  }
  for (const auto& name : wl.train.inputs.names()) {
    h = common::hash_combine(h, common::fnv1a(name));
    const data::Column& col = wl.train.inputs.get(name);
    const std::size_t rows = std::min<std::size_t>(col.size(), probe);
    for (std::size_t i = 0; i < rows; ++i) {
      switch (col.type()) {
        case data::ColumnType::Int:
          h = common::hash_combine(h,
                                   static_cast<std::uint64_t>(col.ints()[i]));
          break;
        case data::ColumnType::Double:
          h = common::hash_combine(
              h, std::bit_cast<std::uint64_t>(col.doubles()[i]));
          break;
        case data::ColumnType::String:
          h = common::hash_combine(h, common::fnv1a(col.strings()[i]));
          break;
      }
    }
  }
  return h;
}

inline std::string fixture_cache_path(const std::string& tag,
                                      std::uint64_t seed,
                                      const workloads::Workload& wl) {
  const auto dir = fixture_cache_dir();
  if (dir.empty()) return {};
  char fp[17];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(workload_fingerprint(wl)));
  return (dir / (tag + "-s" + std::to_string(seed) + "-v" +
                 std::to_string(serialize::kFormatVersion) + "-" + fp + ".wlmp"))
      .string();
}

// ---------------------------------------------------------------------------
// Raw-split cache (WSPL containers).
//
// The trained-fixture caches above skip training but still regenerate the
// workload's raw data in every binary; the split cache persists the
// generated train/valid/test splits themselves. Unlike the trained caches
// it cannot be content-keyed (the key must exist before the data does), so
// it is keyed by (workload, seed, sizes, format version) and validated
// structurally on load. Editing a workload *generator* therefore requires
// clearing the fixture-cache directory (or WILLUMP_SPLIT_CACHE=0); editing
// sizes or seeds invalidates naturally.
// ---------------------------------------------------------------------------

inline bool split_cache_enabled() {
  const char* e = std::getenv("WILLUMP_SPLIT_CACHE");
  return e == nullptr || std::string_view(e) != "0";
}

inline std::string split_cache_path(const std::string& workload_name,
                                    std::uint64_t seed,
                                    const workloads::SplitSizes& sizes) {
  const auto dir = fixture_cache_dir();
  if (dir.empty() || !split_cache_enabled()) return {};
  return (dir / (workload_name + "-splits-s" + std::to_string(seed) + "-n" +
                 std::to_string(sizes.train) + "-" + std::to_string(sizes.valid) +
                 "-" + std::to_string(sizes.test) + "-v" +
                 std::to_string(serialize::kFormatVersion) + ".wlmp"))
      .string();
}

/// Load cached splits into `out` (name/classification/train/valid/test
/// only — the caller rebuilds the pipeline). Returns false on any miss,
/// mismatch or artifact error.
inline bool try_load_cached_splits(const std::string& workload_name,
                                   std::uint64_t seed,
                                   const workloads::SplitSizes& sizes,
                                   workloads::Workload& out) {
  const std::string path = split_cache_path(workload_name, seed, sizes);
  if (path.empty()) return false;
  try {
    auto bundle = serialize::load_split_bundle(path);
    if (bundle.workload != workload_name ||
        bundle.train.targets.size() != sizes.train ||
        bundle.valid.targets.size() != sizes.valid ||
        bundle.test.targets.size() != sizes.test) {
      return false;
    }
    out.name = bundle.workload;
    out.classification = bundle.classification;
    out.train = std::move(bundle.train);
    out.valid = std::move(bundle.valid);
    out.test = std::move(bundle.test);
    return true;
  } catch (const serialize::SerializeError&) {
    return false;
  }
}

/// Persist a generated workload's splits for later binaries (best-effort).
inline void store_cached_splits(const workloads::Workload& wl,
                                std::uint64_t seed,
                                const workloads::SplitSizes& sizes) {
  const std::string path = split_cache_path(wl.name, seed, sizes);
  if (path.empty()) return;
  try {
    serialize::save_split_bundle(
        {wl.name, wl.classification, wl.train, wl.valid, wl.test}, path);
  } catch (const serialize::SerializeError&) {
    // A read-only cache dir must not fail the suite.
  }
}

/// The shared small-Toxic workload, cold-started from the split cache when
/// possible: cached splits skip text generation, and the pipeline re-fitted
/// on the cached train split is bit-identical to the freshly generated one.
inline workloads::Workload small_toxic_cached() {
  const workloads::ToxicConfig cfg = small_toxic_config();
  workloads::Workload w;
  if (try_load_cached_splits("toxic", cfg.seed, cfg.sizes, w)) {
    return workloads::make_toxic_from_splits(cfg, std::move(w.train),
                                             std::move(w.valid),
                                             std::move(w.test));
  }
  w = workloads::make_toxic(cfg);
  store_cached_splits(w, cfg.seed, cfg.sizes);
  return w;
}

/// A workload with both execution engines built, layout probed, and a
/// default-config cascade trained — deserialized from the fixture cache
/// when a matching artifact exists.
struct ExecutorFixture {
  workloads::Workload wl;
  std::shared_ptr<core::CompiledExecutor> compiled;
  std::shared_ptr<core::InterpretedExecutor> interpreted;
  core::TrainedCascade cascade;
  bool cascade_from_cache = false;

  explicit ExecutorFixture(workloads::Workload workload,
                           std::string cache_tag = {},
                           std::uint64_t cache_seed = 0)
      : wl(std::move(workload)) {
    compiled = std::make_shared<core::CompiledExecutor>(
        wl.pipeline.graph, core::analyze_ifvs(wl.pipeline.graph));
    interpreted = std::make_shared<core::InterpretedExecutor>(
        wl.pipeline.graph, core::analyze_ifvs(wl.pipeline.graph));
    compiled->probe_layout(
        wl.train.inputs.select_rows(std::vector<std::size_t>{0, 1}));

    const std::string cache_path =
        cache_tag.empty() ? std::string{}
                          : fixture_cache_path(cache_tag, cache_seed, wl);
    if (!cache_path.empty()) {
      try {
        auto bundle = serialize::load_cascade_bundle(cache_path);
        // The probe above already recorded the live layout; a cached bundle
        // whose layout disagrees is stale (generator change) — retrain.
        if (bundle.block_cols == compiled->analysis().block_cols) {
          serialize::bind_cascade_bundle(bundle, *compiled);
          cascade = std::move(bundle.cascade);
          cascade_from_cache = true;
          return;
        }
      } catch (const serialize::SerializeError&) {
        // Missing or unreadable artifact: train below and refresh it.
      }
    }
    cascade = core::CascadeTrainer::train(*compiled, *wl.pipeline.model_proto,
                                          wl.train, wl.valid,
                                          core::CascadeConfig{});
    if (!cache_path.empty()) {
      try {
        serialize::save_cascade_bundle(
            {cascade, compiled->analysis().block_cols,
             compiled->analysis().col_begin, cascade.stats.cost_seconds},
            cache_path);
      } catch (const serialize::SerializeError&) {
        // A read-only cache dir must not fail the suite.
      }
    }
  }
};

/// Process-wide Toxic fixture (built on first use).
inline ExecutorFixture& shared_toxic() {
  static ExecutorFixture f(small_toxic_cached(), "toxic-cascade", kToxicSeed);
  return f;
}

/// Process-wide Credit-with-remote-tables fixture (built on first use).
inline ExecutorFixture& shared_credit_remote() {
  static ExecutorFixture f(small_credit_remote(), "credit-remote-cascade",
                           kCreditSeed);
  return f;
}

/// Process-wide Product workload without executors (suites that call the
/// whole-pipeline optimizer only need the data).
inline const workloads::Workload& shared_product_wl() {
  static const workloads::Workload wl = small_product();
  return wl;
}

/// A workload plus the default-options optimized pipeline Willump produces
/// for it (serving-layer suites exercise the end product, not the engines)
/// — cold-started from a pipeline artifact when the cache has one.
struct OptimizedFixture {
  workloads::Workload wl;
  core::OptimizedPipeline pipeline;
  bool pipeline_from_cache = false;

  explicit OptimizedFixture(workloads::Workload workload,
                            std::string cache_tag = {},
                            std::uint64_t cache_seed = 0)
      : wl(std::move(workload)) {
    const std::string cache_path =
        cache_tag.empty() ? std::string{}
                          : fixture_cache_path(cache_tag, cache_seed, wl);
    if (!cache_path.empty()) {
      try {
        pipeline = serialize::load_pipeline(cache_path);
        pipeline_from_cache = true;
        return;
      } catch (const serialize::SerializeError&) {
        // Fall through to in-process optimization.
      }
    }
    pipeline =
        core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, {});
    if (!cache_path.empty()) {
      try {
        serialize::save_pipeline(pipeline, cache_path);
      } catch (const serialize::SerializeError&) {
        // A read-only cache dir must not fail the suite.
      } catch (const std::logic_error&) {
        // Pipelines carrying unregistered ops/models skip the cache.
      }
    }
  }
};

/// Process-wide optimized Toxic pipeline (built on first use).
inline OptimizedFixture& shared_toxic_optimized() {
  static OptimizedFixture f(small_toxic_cached(), "toxic-optimized", kToxicSeed);
  return f;
}

}  // namespace willump::testing
