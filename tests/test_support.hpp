#pragma once

// Shared fixtures for the GoogleTest suites.
//
// Training a workload's cascade is by far the most expensive thing a suite
// does, so the repeated workload + executor + cascade setup lives here and
// each binary builds it at most once (function-local statics). Every factory
// seeds its workload explicitly: a parallel `ctest -j` run must be
// reproducible run-to-run regardless of suite scheduling.

#include <memory>
#include <vector>

#include "core/cascades.hpp"
#include "core/executors.hpp"
#include "core/ifv_analysis.hpp"
#include "core/optimizer.hpp"
#include "workloads/credit.hpp"
#include "workloads/product.hpp"
#include "workloads/toxic.hpp"

namespace willump::testing {

// Explicit workload seeds. These match the config defaults on purpose: the
// point is that no suite depends on a default silently changing.
inline constexpr std::uint64_t kToxicSeed = 202;
inline constexpr std::uint64_t kProductSeed = 101;
inline constexpr std::uint64_t kCreditSeed = 404;

/// Small Toxic classification workload (cascade-friendly easy/hard mixture).
inline workloads::Workload small_toxic() {
  workloads::ToxicConfig cfg;
  cfg.seed = kToxicSeed;
  cfg.sizes = {.train = 1500, .valid = 700, .test = 700};
  return workloads::make_toxic(cfg);
}

/// Small Product classification workload with shrunk TF-IDF vocabularies.
inline workloads::Workload small_product() {
  workloads::ProductConfig cfg;
  cfg.seed = kProductSeed;
  cfg.sizes = {.train = 1200, .valid = 500, .test = 600};
  cfg.word_tfidf_features = 600;
  cfg.char_tfidf_features = 900;
  return workloads::make_product(cfg);
}

/// Small Credit regression workload with remote feature tables: gives the
/// cost model the lookup-dominated structure top-K filtering exploits
/// (paper Table 4 setup).
inline workloads::Workload small_credit_remote() {
  workloads::CreditConfig cfg;
  cfg.seed = kCreditSeed;
  cfg.sizes = {.train = 1500, .valid = 600, .test = 1000};
  auto wl = workloads::make_credit(cfg);
  wl.tables->set_network(workloads::default_remote_network());
  return wl;
}

/// A workload with both execution engines built, layout probed, and a
/// default-config cascade trained.
struct ExecutorFixture {
  workloads::Workload wl;
  std::shared_ptr<core::CompiledExecutor> compiled;
  std::shared_ptr<core::InterpretedExecutor> interpreted;
  core::TrainedCascade cascade;

  explicit ExecutorFixture(workloads::Workload workload)
      : wl(std::move(workload)) {
    compiled = std::make_shared<core::CompiledExecutor>(
        wl.pipeline.graph, core::analyze_ifvs(wl.pipeline.graph));
    interpreted = std::make_shared<core::InterpretedExecutor>(
        wl.pipeline.graph, core::analyze_ifvs(wl.pipeline.graph));
    compiled->probe_layout(
        wl.train.inputs.select_rows(std::vector<std::size_t>{0, 1}));
    cascade = core::CascadeTrainer::train(*compiled, *wl.pipeline.model_proto,
                                          wl.train, wl.valid,
                                          core::CascadeConfig{});
  }
};

/// Process-wide Toxic fixture (built on first use).
inline ExecutorFixture& shared_toxic() {
  static ExecutorFixture f(small_toxic());
  return f;
}

/// Process-wide Credit-with-remote-tables fixture (built on first use).
inline ExecutorFixture& shared_credit_remote() {
  static ExecutorFixture f(small_credit_remote());
  return f;
}

/// Process-wide Product workload without executors (suites that call the
/// whole-pipeline optimizer only need the data).
inline const workloads::Workload& shared_product_wl() {
  static const workloads::Workload wl = small_product();
  return wl;
}

/// A workload plus the default-options optimized pipeline Willump produces
/// for it (serving-layer suites exercise the end product, not the engines).
struct OptimizedFixture {
  workloads::Workload wl;
  core::OptimizedPipeline pipeline;

  explicit OptimizedFixture(workloads::Workload workload)
      : wl(std::move(workload)),
        pipeline(core::WillumpOptimizer::optimize(wl.pipeline, wl.train,
                                                  wl.valid, {})) {}
};

/// Process-wide optimized Toxic pipeline (built on first use).
inline OptimizedFixture& shared_toxic_optimized() {
  static OptimizedFixture f(small_toxic());
  return f;
}

}  // namespace willump::testing
