// Golden parity suite for the batched prediction kernels (DESIGN.md §9).
//
// The kernel layer's correctness contract has two tiers, and each test pins
// one of them:
//  - BIT-EXACT (EXPECT_EQ on doubles): the scalar dot variant and the
//    row-wise tree variant preserve the pre-kernel accumulation order, and
//    the blocked tree variant accumulates per row in the same tree order as
//    row-wise, so those pairs must agree to the bit — as must dense vs
//    block-densified sparse GBDT input, and any model round-tripped through
//    its serialized payload (the kernel config travels with the weights).
//  - TOLERANCE (<= 1e-12 relative): unrolled/AVX dot variants re-associate
//    the sum across independent accumulators; they may differ from scalar
//    only by that documented bound.
// Cascade early-exit may skip work ONLY for rows it proves hard, so its
// hard bitmap must match the evaluate-everything reference exactly and its
// margins must match on every row it did finish.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/cost_model.hpp"
#include "core/optimizer.hpp"
#include "data/matrix.hpp"
#include "kernels/autotune.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/gemv.hpp"
#include "models/gbdt.hpp"
#include "models/linear.hpp"
#include "models/mlp.hpp"
#include "serialize/artifact.hpp"
#include "serialize/buffer.hpp"
#include "serialize/error.hpp"
#include "workloads/synthetic.hpp"

namespace willump {
namespace {

using kernels::DotVariant;
using kernels::KernelConfig;
using kernels::TreeVariant;

constexpr double kRelTol = 1e-12;

KernelConfig reference_config() {
  return {DotVariant::Scalar, TreeVariant::RowWise, 1};
}

std::vector<double> gaussian(std::size_t n, common::Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_gaussian();
  return v;
}

data::DenseMatrix dense_matrix(std::size_t rows, std::size_t cols,
                               common::Rng& rng, double zero_prob = 0.0) {
  data::DenseMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rng.next_bernoulli(zero_prob) ? 0.0 : rng.next_gaussian();
    }
  }
  return m;
}

std::vector<double> labels(const data::DenseMatrix& x, common::Rng& rng) {
  std::vector<double> y(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double m = x(r, 0) - x(r, 1) + 0.3 * rng.next_gaussian();
    y[r] = m > 0.0 ? 1.0 : 0.0;
  }
  return y;
}

void expect_close(std::span<const double> a, std::span<const double> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::fabs(a[i]), std::fabs(b[i]), 1.0});
    EXPECT_NEAR(a[i], b[i], kRelTol * scale) << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// Dot-product variants.
// ---------------------------------------------------------------------------

TEST(DotVariants, ScalarIsStrictLeftToRight) {
  common::Rng rng(1);
  const auto a = gaussian(257, rng);
  const auto b = gaussian(257, rng);
  double expected = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) expected += a[i] * b[i];
  EXPECT_EQ(kernels::dot(DotVariant::Scalar, a.data(), b.data(), a.size()),
            expected);
}

TEST(DotVariants, AgreeWithScalarWithinTolerance) {
  common::Rng rng(2);
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    const auto a = gaussian(n, rng);
    const auto b = gaussian(n, rng);
    const double ref = kernels::dot(DotVariant::Scalar, a.data(), b.data(), n);
    for (DotVariant v : kernels::candidate_dots()) {
      const double got = kernels::dot(v, a.data(), b.data(), n);
      const double scale = std::max(std::fabs(ref), 1.0);
      EXPECT_NEAR(got, ref, kRelTol * scale)
          << "n=" << n << " variant=" << kernels::variant_name(v);
    }
  }
}

TEST(DotVariants, DispatchIsClosedUnderDowngrade) {
  EXPECT_TRUE(kernels::dot_supported(DotVariant::Scalar));
  EXPECT_TRUE(kernels::dot_supported(DotVariant::Unrolled));
  for (DotVariant v : {DotVariant::Scalar, DotVariant::Unrolled,
                       DotVariant::Avx2, DotVariant::Avx512}) {
    EXPECT_TRUE(kernels::dot_supported(kernels::effective_dot(v)))
        << kernels::variant_name(v);
  }
  // candidate_dots only lists what the machine executes natively, so the
  // autotuner never installs a config that would silently downgrade.
  for (DotVariant v : kernels::candidate_dots()) {
    EXPECT_TRUE(kernels::dot_supported(v));
  }
  EXPECT_EQ(kernels::native_config().dot, kernels::best_supported_dot());
}

TEST(DenseMargins, VariantsAgreeAndScalarMatchesReference) {
  common::Rng rng(3);
  const std::size_t rows = 13, d = 129;
  const data::DenseMatrix x = dense_matrix(rows, d, rng);
  const auto w = gaussian(d, rng);
  const double bias = 0.25;

  std::vector<double> ref(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    double acc = bias;  // the pre-kernel order: bias-seeded, left-to-right
    for (std::size_t c = 0; c < d; ++c) acc += x(r, c) * w[c];
    ref[r] = acc;
  }

  std::vector<double> out(rows);
  kernels::dense_margins(DotVariant::Scalar, x.data().data(), rows, d,
                         w.data(), d, bias, out.data());
  EXPECT_EQ(out, ref);  // bit-exact tier

  for (DotVariant v : kernels::candidate_dots()) {
    kernels::dense_margins(v, x.data().data(), rows, d, w.data(), d, bias,
                           out.data());
    expect_close(out, ref);
  }
}

TEST(CsrMargins, VariantsAgreeAndScalarMatchesReference) {
  common::Rng rng(4);
  const std::size_t rows = 17, d = 64;
  const data::CsrMatrix x =
      data::FeatureMatrix(dense_matrix(rows, d, rng, 0.7)).to_csr();
  const auto w = gaussian(d, rng);
  const double bias = -0.5;

  std::vector<double> ref(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto row = x.row(r);
    double acc = bias;
    for (std::size_t k = 0; k < row.nnz(); ++k) {
      acc += row.values[k] * w[static_cast<std::size_t>(row.indices[k])];
    }
    ref[r] = acc;
  }

  std::vector<double> out(rows);
  kernels::csr_margins(DotVariant::Scalar, x.indptr().data(),
                       x.indices().data(), x.values().data(), w.data(), bias,
                       rows, out.data());
  EXPECT_EQ(out, ref);

  for (DotVariant v : kernels::candidate_dots()) {
    kernels::csr_margins(v, x.indptr().data(), x.indices().data(),
                         x.values().data(), w.data(), bias, rows, out.data());
    expect_close(out, ref);
  }
}

// ---------------------------------------------------------------------------
// GBDT traversal variants.
// ---------------------------------------------------------------------------

models::Gbdt trained_gbdt(common::Rng& rng, bool classification = true) {
  models::GbdtConfig cfg;
  cfg.n_trees = 25;
  cfg.max_depth = 5;
  cfg.classification = classification;
  cfg.permutation_rows = 0;
  models::Gbdt model(cfg);
  const data::DenseMatrix xtr = dense_matrix(600, 12, rng);
  model.fit(data::FeatureMatrix(xtr), labels(xtr, rng));
  return model;
}

TEST(GbdtKernels, BlockedIsBitExactWithRowWiseAcrossBatchAndBlockSizes) {
  common::Rng rng(5);
  models::Gbdt model = trained_gbdt(rng);
  for (std::size_t rows : {1u, 7u, 64u, 1000u}) {
    const data::FeatureMatrix x(dense_matrix(rows, 12, rng));
    std::vector<double> ref(rows), got(rows);
    model.set_kernel_config(reference_config());
    model.predict_into(x, ref);
    for (std::uint32_t block : {1u, 7u, 8u, 32u, 64u}) {
      model.set_kernel_config(
          {DotVariant::Scalar, TreeVariant::Blocked, block});
      model.predict_into(x, got);
      EXPECT_EQ(got, ref) << "rows=" << rows << " block=" << block;
    }
  }
}

TEST(GbdtKernels, SparseInputIsBitExactWithDense) {
  common::Rng rng(6);
  models::GbdtConfig cfg;
  cfg.n_trees = 20;
  cfg.max_depth = 4;
  cfg.permutation_rows = 0;
  models::Gbdt model(cfg);
  // Train and predict on zero-heavy data so the sparse path hits both
  // explicit values and implicit zeros.
  const data::DenseMatrix xtr = dense_matrix(500, 10, rng, 0.6);
  model.fit(data::FeatureMatrix(xtr), labels(xtr, rng));

  for (std::size_t rows : {1u, 7u, 64u, 1000u}) {
    const data::DenseMatrix xd = dense_matrix(rows, 10, rng, 0.6);
    const data::FeatureMatrix dense(xd);
    const data::FeatureMatrix sparse(dense.to_csr());
    std::vector<double> from_dense(rows), from_sparse(rows);
    model.predict_into(dense, from_dense);
    model.predict_into(sparse, from_sparse);
    EXPECT_EQ(from_sparse, from_dense) << "rows=" << rows;
  }
}

TEST(GbdtKernels, PredictMatchesPredictInto) {
  common::Rng rng(7);
  models::Gbdt model = trained_gbdt(rng);
  const data::FeatureMatrix x(dense_matrix(101, 12, rng));
  std::vector<double> out(101);
  model.predict_into(x, out);
  EXPECT_EQ(model.predict(x), out);
}

TEST(GbdtKernels, CascadeEarlyExitMatchesEvaluateEverythingReference) {
  common::Rng rng(8);
  models::Gbdt model = trained_gbdt(rng);
  const std::size_t rows = 500;
  const data::FeatureMatrix x(dense_matrix(rows, 12, rng));

  std::vector<double> full(rows);
  model.predict_into(x, full);

  for (double threshold : {0.5, 0.6, 0.9, 1.0}) {
    // The evaluate-everything reference the default Model::predict_cascade
    // implements: full predictions, then the confidence cut.
    std::vector<std::uint8_t> expected_hard(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      expected_hard[i] = models::confidence(full[i]) <= threshold ? 1 : 0;
    }

    std::vector<double> preds(rows);
    std::vector<std::uint8_t> hard(rows);
    model.predict_cascade(x, threshold, preds, hard);
    EXPECT_EQ(hard, expected_hard) << "threshold=" << threshold;
    for (std::size_t i = 0; i < rows; ++i) {
      // Early exit may leave partial values only in rows it proved hard.
      if (!hard[i]) {
        EXPECT_EQ(preds[i], full[i]) << "threshold=" << threshold;
      }
    }
  }
}

TEST(GbdtKernels, RegressionFallsBackToFullEvaluationCascade) {
  common::Rng rng(9);
  models::Gbdt model = trained_gbdt(rng, /*classification=*/false);
  const std::size_t rows = 64;
  const data::FeatureMatrix x(dense_matrix(rows, 12, rng));
  std::vector<double> full(rows), preds(rows);
  std::vector<std::uint8_t> hard(rows);
  model.predict_into(x, full);
  model.predict_cascade(x, 0.7, preds, hard);
  EXPECT_EQ(preds, full);  // no early exit for regressors: exact margins
}

// ---------------------------------------------------------------------------
// Linear / MLP variants.
// ---------------------------------------------------------------------------

TEST(LinearKernels, VariantsAgreeOnDenseAndSparse) {
  common::Rng rng(10);
  models::LogisticRegression model;
  const data::DenseMatrix xtr = dense_matrix(400, 40, rng, 0.4);
  model.fit(data::FeatureMatrix(xtr), labels(xtr, rng));

  for (std::size_t rows : {1u, 7u, 64u, 1000u}) {
    const data::DenseMatrix xd = dense_matrix(rows, 40, rng, 0.4);
    for (bool sparse : {false, true}) {
      const data::FeatureMatrix x =
          sparse ? data::FeatureMatrix(data::FeatureMatrix(xd).to_csr())
                 : data::FeatureMatrix(xd);
      std::vector<double> ref(rows), got(rows);
      model.set_kernel_config(reference_config());
      model.predict_into(x, ref);
      for (DotVariant v : kernels::candidate_dots()) {
        model.set_kernel_config({v, TreeVariant::Blocked, 32});
        model.predict_into(x, got);
        if (v == DotVariant::Scalar) {
          EXPECT_EQ(got, ref) << "rows=" << rows << " sparse=" << sparse;
        } else {
          expect_close(got, ref);
        }
      }
    }
  }
}

TEST(MlpKernels, VariantsAgreeOnDenseAndSparse) {
  common::Rng rng(11);
  models::MlpConfig cfg;
  cfg.hidden = 17;  // not a SIMD-friendly multiple on purpose
  cfg.epochs = 2;
  models::Mlp model(cfg);
  const data::DenseMatrix xtr = dense_matrix(300, 33, rng, 0.3);
  model.fit(data::FeatureMatrix(xtr), labels(xtr, rng));

  for (std::size_t rows : {1u, 7u, 64u, 100u}) {
    const data::DenseMatrix xd = dense_matrix(rows, 33, rng, 0.3);
    for (bool sparse : {false, true}) {
      const data::FeatureMatrix x =
          sparse ? data::FeatureMatrix(data::FeatureMatrix(xd).to_csr())
                 : data::FeatureMatrix(xd);
      std::vector<double> ref(rows), got(rows);
      model.set_kernel_config(reference_config());
      model.predict_into(x, ref);
      for (DotVariant v : kernels::candidate_dots()) {
        model.set_kernel_config({v, TreeVariant::Blocked, 32});
        model.predict_into(x, got);
        if (v == DotVariant::Scalar) {
          EXPECT_EQ(got, ref) << "rows=" << rows << " sparse=" << sparse;
        } else {
          expect_close(got, ref);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Config serialization and per-model round-trips.
// ---------------------------------------------------------------------------

TEST(KernelConfigSerialize, RoundTripsExactly) {
  const KernelConfig cfg{DotVariant::Avx512, TreeVariant::Blocked, 48, 4096};
  serialize::Writer w;
  kernels::save_kernel_config(w, cfg);
  serialize::Reader r(w.bytes());
  EXPECT_EQ(kernels::load_kernel_config(r), cfg);
}

TEST(KernelConfigSerialize, RejectsOutOfRangeValues) {
  const auto corrupt = [](std::uint8_t dot, std::uint8_t tree,
                          std::uint32_t block) {
    serialize::Writer w;
    w.u8(dot);
    w.u8(tree);
    w.u32(block);
    w.u32(kernels::kDefaultSparseCutoff);  // valid cutoff: any u32 is legal
    serialize::Reader r(w.bytes());
    try {
      kernels::load_kernel_config(r);
      return false;  // should have thrown
    } catch (const serialize::SerializeError& e) {
      return e.code() == serialize::ErrorCode::CorruptData;
    }
  };
  EXPECT_TRUE(corrupt(200, 1, 32));  // unknown dot variant
  EXPECT_TRUE(corrupt(0, 9, 32));    // unknown tree variant
  EXPECT_TRUE(corrupt(0, 1, 0));     // zero block
  EXPECT_TRUE(corrupt(0, 1, 65));    // block above kMaxTreeBlock
}

TEST(AutotuneReportSerialize, RoundTripsExactly) {
  kernels::AutotuneReport rep;
  rep.tuned = true;
  rep.full = {DotVariant::Avx2, TreeVariant::Blocked, 16};
  rep.has_small = true;
  rep.small = {DotVariant::Unrolled, TreeVariant::RowWise, 1};
  rep.tuned_ops = true;
  rep.ops = {kernels::LookupVariant::SortedVocab, 512, false};
  rep.timings = {{"full/dot:avx2", 1.5e-4}, {"small/tree:rowwise", 2.5e-5}};

  serialize::Writer w;
  kernels::save_autotune_report(w, rep);
  serialize::Reader r(w.bytes());
  const kernels::AutotuneReport got = kernels::load_autotune_report(r);
  EXPECT_EQ(got.tuned, rep.tuned);
  EXPECT_EQ(got.full, rep.full);
  EXPECT_EQ(got.has_small, rep.has_small);
  EXPECT_EQ(got.small, rep.small);
  EXPECT_EQ(got.tuned_ops, rep.tuned_ops);
  EXPECT_EQ(got.ops, rep.ops);
  ASSERT_EQ(got.timings.size(), rep.timings.size());
  for (std::size_t i = 0; i < rep.timings.size(); ++i) {
    EXPECT_EQ(got.timings[i].name, rep.timings[i].name);
    EXPECT_EQ(got.timings[i].seconds, rep.timings[i].seconds);
  }
}

template <typename ModelT>
void expect_model_roundtrip_preserves_config_and_bits(
    ModelT& model, const data::FeatureMatrix& x) {
  serialize::Writer w;
  model.save(w);
  serialize::Reader r(w.bytes());
  const auto loaded = ModelT::load(r);
  EXPECT_EQ(loaded->kernel_config(), model.kernel_config());
  EXPECT_EQ(loaded->predict(x), model.predict(x));
}

TEST(ModelRoundtrip, KernelConfigTravelsWithEveryModelFamily) {
  common::Rng rng(12);
  const KernelConfig forced{DotVariant::Unrolled, TreeVariant::Blocked, 24};
  const data::DenseMatrix xtr = dense_matrix(300, 10, rng);
  const auto y = labels(xtr, rng);
  const data::FeatureMatrix x(dense_matrix(50, 10, rng));

  models::GbdtConfig gcfg;
  gcfg.n_trees = 8;
  gcfg.max_depth = 3;
  gcfg.permutation_rows = 0;
  models::Gbdt gbdt(gcfg);
  gbdt.fit(data::FeatureMatrix(xtr), y);
  gbdt.set_kernel_config(forced);
  expect_model_roundtrip_preserves_config_and_bits(gbdt, x);

  models::LogisticRegression lr;
  lr.fit(data::FeatureMatrix(xtr), y);
  lr.set_kernel_config(forced);
  expect_model_roundtrip_preserves_config_and_bits(lr, x);

  models::MlpConfig mcfg;
  mcfg.epochs = 1;
  models::Mlp mlp(mcfg);
  mlp.fit(data::FeatureMatrix(xtr), y);
  mlp.set_kernel_config(forced);
  expect_model_roundtrip_preserves_config_and_bits(mlp, x);
}

// ---------------------------------------------------------------------------
// Autotuner and optimizer wiring.
// ---------------------------------------------------------------------------

TEST(Autotune, InstallsASupportedWinnerAndRecordsEveryCandidate) {
  common::Rng rng(13);
  models::Gbdt model = trained_gbdt(rng);
  const data::FeatureMatrix x(dense_matrix(128, 12, rng));

  kernels::AutotuneConfig cfg;
  cfg.reps = 1;
  std::vector<kernels::VariantTiming> timings;
  const KernelConfig winner =
      core::tune_model_kernels(model, x, cfg, "gbdt", &timings);
  EXPECT_EQ(model.kernel_config(), winner);
  EXPECT_TRUE(kernels::dot_supported(winner.dot));
  EXPECT_GE(winner.tree_block, 1u);
  EXPECT_LE(winner.tree_block, kernels::kMaxTreeBlock);
  // Stage 1 times every candidate dot; stage 2 times row-wise plus each
  // configured block size.
  EXPECT_EQ(timings.size(),
            kernels::candidate_dots().size() + 1 + cfg.tree_blocks.size());
  for (const auto& t : timings) {
    EXPECT_EQ(t.name.rfind("gbdt/", 0), 0u) << t.name;
    EXPECT_GT(t.seconds, 0.0) << t.name;
  }
}

workloads::Workload tiny_synthetic() {
  workloads::SyntheticParallelConfig cfg;
  cfg.sizes = {.train = 250, .valid = 100, .test = 100};
  cfg.n_generators = 2;
  cfg.tfidf_features = 500;
  return workloads::make_synthetic_parallel(cfg);
}

TEST(Autotune, PipelineReportRoundTripsThroughArtifactWithIdenticalBits) {
  const auto wl = tiny_synthetic();
  core::OptimizeOptions opts;
  opts.autotune.reps = 1;  // keep optimize-time tuning cheap in tests
  opts.autotune.sample_rows = 64;
  const auto tuned =
      core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  ASSERT_TRUE(tuned.autotune_report().tuned);
  EXPECT_EQ(tuned.autotune_report().full,
            tuned.full_model().kernel_config());
  EXPECT_FALSE(tuned.autotune_report().timings.empty());

  const auto loaded =
      serialize::pipeline_from_bytes(serialize::pipeline_to_bytes(tuned));
  EXPECT_EQ(loaded.autotune_report().tuned, tuned.autotune_report().tuned);
  EXPECT_EQ(loaded.autotune_report().full, tuned.autotune_report().full);
  EXPECT_EQ(loaded.autotune_report().timings.size(),
            tuned.autotune_report().timings.size());
  EXPECT_EQ(loaded.full_model().kernel_config(),
            tuned.full_model().kernel_config());
  EXPECT_EQ(loaded.predict(wl.test.inputs), tuned.predict(wl.test.inputs));
}

TEST(Autotune, ForcedKernelConfigSkipsTuningAndWinsEverywhere) {
  const auto wl = tiny_synthetic();
  core::OptimizeOptions opts;
  opts.kernel_config = reference_config();  // takes precedence over autotune
  const auto pipeline =
      core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  EXPECT_FALSE(pipeline.autotune_report().tuned);
  EXPECT_EQ(pipeline.full_model().kernel_config(), reference_config());
  EXPECT_EQ(pipeline.autotune_report().full, reference_config());
}

TEST(Autotune, DisabledTuningKeepsNativeDefaults) {
  const auto wl = tiny_synthetic();
  core::OptimizeOptions opts;
  opts.autotune_kernels = false;
  const auto pipeline =
      core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  EXPECT_FALSE(pipeline.autotune_report().tuned);
  EXPECT_EQ(pipeline.full_model().kernel_config(), kernels::native_config());
}

}  // namespace
}  // namespace willump
