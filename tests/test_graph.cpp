#include "core/graph.hpp"

#include <gtest/gtest.h>

#include "ops/concat.hpp"
#include "ops/string_ops.hpp"

namespace willump::core {
namespace {

TEST(Graph, BuildAndQuery) {
  Graph g;
  const int src = g.add_source("x", data::ColumnType::String);
  const int lower =
      g.add_transform("lower", std::make_shared<ops::LowercaseOp>(), {src});
  g.set_output(lower);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.node(src).kind, NodeKind::Source);
  EXPECT_EQ(g.node(lower).kind, NodeKind::Transform);
  EXPECT_EQ(g.output(), lower);
}

TEST(Graph, RejectsForwardReferences) {
  Graph g;
  (void)g.add_source("x", data::ColumnType::String);
  EXPECT_THROW(
      g.add_transform("bad", std::make_shared<ops::LowercaseOp>(), {5}),
      std::invalid_argument);
  EXPECT_THROW(
      g.add_transform("bad", std::make_shared<ops::LowercaseOp>(), {-1}),
      std::invalid_argument);
}

TEST(Graph, RejectsNullOperator) {
  Graph g;
  const int src = g.add_source("x", data::ColumnType::String);
  EXPECT_THROW(g.add_transform("bad", nullptr, {src}), std::invalid_argument);
}

TEST(Graph, SetOutputValidates) {
  Graph g;
  EXPECT_THROW(g.set_output(0), std::invalid_argument);
  const int src = g.add_source("x", data::ColumnType::String);
  g.set_output(src);
  EXPECT_EQ(g.output(), src);
}

TEST(Graph, ExecutionOrderSkipsUnreachable) {
  Graph g;
  const int a = g.add_source("a", data::ColumnType::String);
  (void)g.add_source("unused", data::ColumnType::Int);
  const int lower =
      g.add_transform("lower", std::make_shared<ops::LowercaseOp>(), {a});
  g.set_output(lower);
  const auto order = g.execution_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], a);
  EXPECT_EQ(order[1], lower);
}

TEST(Graph, ExecutionOrderRequiresOutput) {
  Graph g;
  (void)g.add_source("a", data::ColumnType::String);
  EXPECT_THROW(g.execution_order(), std::logic_error);
}

TEST(Graph, AncestorsTransitive) {
  Graph g;
  const int a = g.add_source("a", data::ColumnType::String);
  const int l1 = g.add_transform("l1", std::make_shared<ops::LowercaseOp>(), {a});
  const int l2 = g.add_transform("l2", std::make_shared<ops::StripPunctOp>(), {l1});
  const auto anc = g.ancestors(l2);
  ASSERT_EQ(anc.size(), 2u);
  EXPECT_EQ(anc[0], a);
  EXPECT_EQ(anc[1], l1);
  EXPECT_TRUE(g.ancestors(a).empty());
}

TEST(Graph, SourceAncestors) {
  Graph g;
  const int a = g.add_source("a", data::ColumnType::String);
  const int b = g.add_source("b", data::ColumnType::String);
  const int la = g.add_transform("la", std::make_shared<ops::LowercaseOp>(), {a});
  const int cat = g.add_transform("cat", std::make_shared<ops::ConcatOp>(), {la, b});
  const auto srcs = g.source_ancestors(cat);
  ASSERT_EQ(srcs.size(), 2u);
  EXPECT_EQ(srcs[0], a);
  EXPECT_EQ(srcs[1], b);
}

}  // namespace
}  // namespace willump::core
