// Concurrency surface of the memory-efficiency layer (run under
// ThreadSanitizer via `ctest -L concurrency`):
//  - copy-on-write fitted state: replicas deserialized from the same bytes
//    share interned tables/vocabularies/forests through shared_ptr<const>,
//    and stay valid while swap_model retires generations under live
//    open-loop traffic;
//  - per-worker arena scratch: concurrent predict paths each reuse their
//    own thread_local ExecScratch, and arena rewinding never aliases rows
//    another thread (or a later request) still depends on — predictions
//    stay bit-identical to a single-threaded reference throughout.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/executors.hpp"
#include "serialize/artifact.hpp"
#include "serialize/intern.hpp"
#include "serving/server.hpp"
#include "test_support.hpp"

namespace willump {
namespace {

using Clock = std::chrono::steady_clock;

TEST(CowConcurrency, ReplicasShareInternedStateAcrossLoads) {
  auto& f = testing::shared_toxic_optimized();
  const auto bytes = serialize::pipeline_to_bytes(f.pipeline);

  serialize::InternPool::set_enabled(true);
  serialize::InternPool::instance().clear();
  const auto first = std::make_shared<const core::OptimizedPipeline>(
      serialize::pipeline_from_bytes(bytes));
  const auto misses = serialize::InternPool::instance().stats().misses;
  EXPECT_GT(misses, 0u);
  const auto second = std::make_shared<const core::OptimizedPipeline>(
      serialize::pipeline_from_bytes(bytes));
  // Byte-identical fitted state dedups to the first load's live objects.
  EXPECT_GT(serialize::InternPool::instance().stats().hits, 0u);
  EXPECT_EQ(serialize::InternPool::instance().stats().misses, misses);

  const auto row = f.wl.test.inputs.row(0);
  EXPECT_EQ(first->predict_one(row), second->predict_one(row));
}

TEST(CowConcurrency, SharedStateSurvivesSwapUnderOpenLoopTraffic) {
  auto& f = testing::shared_toxic_optimized();
  const auto bytes = serialize::pipeline_to_bytes(f.pipeline);
  serialize::InternPool::set_enabled(true);

  // Reference predictions from the in-memory pipeline; every loaded
  // generation predicts identically (same bytes), so traffic can assert
  // exact values across any number of swaps.
  const std::size_t kRows = 24;
  std::vector<data::Batch> rows;
  std::vector<double> ref;
  for (std::size_t i = 0; i < kRows; ++i) {
    rows.push_back(f.wl.test.inputs.row(i));
    ref.push_back(f.pipeline.predict_one(rows.back()));
  }

  serving::Server server(serving::ServerConfig{.num_workers = 2});
  server.register_model("m", std::make_shared<const core::OptimizedPipeline>(
                                 serialize::pipeline_from_bytes(bytes)));
  // Replica groups grow before serving starts (first submit).
  server.add_replica("m", std::make_shared<const core::OptimizedPipeline>(
                              serialize::pipeline_from_bytes(bytes)));
  ASSERT_EQ(server.replica_count("m"), 2u);

  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        const std::size_t r = static_cast<std::size_t>(t * 17 + i) % kRows;
        if (server.submit("m", rows[r]).get() != ref[r]) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread swapper([&] {
    // Full rollouts while traffic is in flight: each swap retires a
    // generation whose interned state the new one immediately re-shares.
    while (!stop.load(std::memory_order_relaxed)) {
      server.swap_model("m", std::make_shared<const core::OptimizedPipeline>(
                                 serialize::pipeline_from_bytes(bytes)));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (auto& c : clients) c.join();
  stop.store(true, std::memory_order_relaxed);
  swapper.join();
  server.shutdown();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(CowConcurrency, ArenaScratchNeverAliasesAcrossConcurrentPredicts) {
  auto& f = testing::shared_toxic_optimized();
  core::set_request_scratch_enabled(true);

  // Per-thread disjoint row slices with a single-threaded reference; any
  // cross-thread scratch aliasing or stale-arena reuse shows up as a
  // mismatched prediction (and as a race under TSan).
  const std::size_t kThreads = 4;
  const std::size_t kSlice = 16;
  std::vector<std::vector<data::Batch>> slices(kThreads);
  std::vector<std::vector<double>> ref(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kSlice; ++i) {
      slices[t].push_back(f.wl.test.inputs.row(t * kSlice + i));
      ref[t].push_back(f.pipeline.predict_one(slices[t].back()));
    }
  }

  std::atomic<int> wrong{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      double out[1];
      for (int round = 0; round < 30; ++round) {
        for (std::size_t i = 0; i < kSlice; ++i) {
          f.pipeline.predict_into(slices[t][i], {out, 1});
          if (out[0] != ref[t][i]) {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace willump
