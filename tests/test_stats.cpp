#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace willump::common {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
}

TEST(Stats, BinomialCiShrinksWithN) {
  const double w100 = binomial_ci95_half_width(0.9, 100);
  const double w10000 = binomial_ci95_half_width(0.9, 10000);
  EXPECT_GT(w100, w10000);
  EXPECT_NEAR(w10000, 1.96 * std::sqrt(0.9 * 0.1 / 10000.0), 1e-12);
}

TEST(Stats, BinomialCiDegenerate) {
  EXPECT_DOUBLE_EQ(binomial_ci95_half_width(0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_ci95_half_width(1.0, 100), 0.0);
}

TEST(Stats, AccuracyWithinCi) {
  // 90% accuracy over 1000 trials: CI half-width ~ 1.86%.
  EXPECT_TRUE(accuracy_within_ci95(0.89, 0.90, 1000));
  EXPECT_FALSE(accuracy_within_ci95(0.85, 0.90, 1000));
}

TEST(Stats, PearsonPerfectAndInverse) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  std::vector<double> neg{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, SummaryFields) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 100.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_GT(s.p99, s.median);
}

TEST(LatencyRecorder, RecordsAndSummarizes) {
  LatencyRecorder rec;
  EXPECT_TRUE(rec.empty());
  for (double v : {4.0, 1.0, 3.0, 2.0}) rec.record(v);
  EXPECT_EQ(rec.count(), 4u);
  EXPECT_DOUBLE_EQ(rec.percentile(50.0), 2.5);
  EXPECT_DOUBLE_EQ(rec.percentile(100.0), 4.0);
  const auto s = rec.summary();
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  rec.clear();
  EXPECT_TRUE(rec.empty());
}

TEST(LatencyRecorder, MergeCombinesSamples) {
  LatencyRecorder a, b;
  a.record(1.0);
  b.record(3.0);
  b.record(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.percentile(50.0), 3.0);
}

}  // namespace
}  // namespace willump::common
