#include "core/cascades.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "models/metrics.hpp"
#include "test_support.hpp"

namespace willump::core {
namespace {

/// One small Toxic workload + compiled executor + trained cascade shared by
/// all tests in this file (training cascades repeatedly would dominate test
/// time otherwise); see tests/test_support.hpp.
willump::testing::ExecutorFixture& fixture() {
  return willump::testing::shared_toxic();
}

TEST(CascadeTrainer, ProducesEnabledCascade) {
  const auto& c = fixture().cascade;
  ASSERT_TRUE(c.enabled());
  EXPECT_NE(c.small_model, nullptr);
  EXPECT_NE(c.full_model, nullptr);
  EXPECT_GE(c.threshold, 0.5);
  EXPECT_LE(c.threshold, 1.0);
}

TEST(CascadeTrainer, EfficientSetIsProperSubset) {
  const auto& c = fixture().cascade;
  const auto n_eff = static_cast<std::size_t>(
      std::count(c.efficient_mask.begin(), c.efficient_mask.end(), true));
  EXPECT_GT(n_eff, 0u);
  EXPECT_LT(n_eff, c.efficient_mask.size());
  for (std::size_t f = 0; f < c.efficient_mask.size(); ++f) {
    EXPECT_NE(c.efficient_mask[f], c.inefficient_mask[f]);
  }
}

TEST(CascadeTrainer, EfficientSetCostsLessThanHalf) {
  const auto& c = fixture().cascade;
  double eff_cost = 0.0;
  for (std::size_t f = 0; f < c.efficient_mask.size(); ++f) {
    if (c.efficient_mask[f]) eff_cost += c.stats.cost_seconds[f];
  }
  EXPECT_LE(eff_cost, c.stats.total_cost() / 2.0 + 1e-12);
}

TEST(CascadeTrainer, ValidationAccuracyWithinCi) {
  // The paper's own acceptance rule (§6.3): the cascade's accuracy loss is
  // acceptable when it is not statistically significant at the validation
  // size — not when it clears a hand-tuned constant.
  auto& f = fixture();
  const auto& c = f.cascade;
  EXPECT_TRUE(common::accuracy_within_ci95(c.cascade_valid_accuracy,
                                           c.full_valid_accuracy,
                                           f.wl.valid.targets.size()))
      << "cascade " << c.cascade_valid_accuracy << " vs full "
      << c.full_valid_accuracy << " over " << f.wl.valid.targets.size();
}

TEST(CascadePredict, AccuracyWithinCiOfFullModel) {
  auto& f = fixture();
  const auto casc_preds =
      cascade_predict(*f.compiled, f.cascade, f.wl.test.inputs, {});
  const auto full_preds =
      f.cascade.full_model->predict(f.compiled->compute_matrix(f.wl.test.inputs));
  const double casc_acc = models::accuracy(casc_preds, f.wl.test.targets);
  const double full_acc = models::accuracy(full_preds, f.wl.test.targets);
  EXPECT_TRUE(common::accuracy_within_ci95(casc_acc, full_acc,
                                           f.wl.test.targets.size()));
}

TEST(CascadePredict, ShortCircuitsSomeRows) {
  auto& f = fixture();
  CascadeRunStats stats;
  (void)cascade_predict(*f.compiled, f.cascade, f.wl.test.inputs, {}, &stats);
  EXPECT_EQ(stats.total_rows, f.wl.test.inputs.num_rows());
  // At least some rows must be classified by the small model (on this small
  // fixture the small model can be confident on every row, so no strict
  // upper bound is asserted).
  EXPECT_GT(stats.short_circuited, 0u);
  EXPECT_LE(stats.short_circuited, stats.total_rows);
}

TEST(CascadePredict, HardRowsMatchFullModelExactly) {
  auto& f = fixture();
  const auto casc = cascade_predict(*f.compiled, f.cascade, f.wl.test.inputs, {});
  const auto full =
      f.cascade.full_model->predict(f.compiled->compute_matrix(f.wl.test.inputs));
  // Rows that cascaded must carry the full model's exact prediction.
  const auto eff = f.compiled->compute_matrix(
      f.wl.test.inputs,
      [&] {
        ExecOptions o;
        o.fg_mask = f.cascade.efficient_mask;
        return o;
      }());
  const auto small = f.cascade.small_model->predict(eff);
  for (std::size_t i = 0; i < casc.size(); ++i) {
    if (models::confidence(small[i]) <= f.cascade.threshold) {
      ASSERT_DOUBLE_EQ(casc[i], full[i]);
    } else {
      ASSERT_DOUBLE_EQ(casc[i], small[i]);
    }
  }
}

TEST(ThresholdSelect, PicksLowestFeasibleGridPoint) {
  // Small model confident and right on rows 0-2; wrong on row 3 with
  // confidence 0.85. Full model always right.
  const std::vector<double> small{0.95, 0.05, 0.99, 0.85};
  const std::vector<double> full{0.9, 0.1, 0.9, 0.1};
  const std::vector<double> labels{1.0, 0.0, 1.0, 0.0};
  // Target 0: need threshold above 0.85 so row 3 cascades -> t=0.9.
  EXPECT_DOUBLE_EQ(CascadeTrainer::select_threshold(small, full, labels, 0.0),
                   0.9);
  // Allowing one error (25% loss) lets t=0.5 pass.
  EXPECT_DOUBLE_EQ(CascadeTrainer::select_threshold(small, full, labels, 0.3),
                   0.5);
}

TEST(ThresholdSelect, ThresholdOneAlwaysFeasible) {
  // Small model is always wrong but never > 1.0 confident: cascading
  // everything reproduces the full model.
  const std::vector<double> small{0.9, 0.9};
  const std::vector<double> full{0.9, 0.1};
  const std::vector<double> labels{1.0, 0.0};
  const double t = CascadeTrainer::select_threshold(small, full, labels, 0.0);
  EXPECT_LE(t, 1.0);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const double p = models::confidence(small[i]) > t ? small[i] : full[i];
    if (models::predicted_label(p) == labels[i]) ++correct;
  }
  EXPECT_EQ(correct, labels.size());
}

TEST(CascadeConfig, PolicyAblationChangesSelection) {
  auto& f = fixture();
  CascadeConfig cheap_cfg;
  cheap_cfg.policy = SelectionPolicy::Cheapest;
  const auto cheap = CascadeTrainer::train(*f.compiled, *f.wl.pipeline.model_proto,
                                           f.wl.train, f.wl.valid, cheap_cfg);
  ASSERT_TRUE(cheap.enabled());
  // Cheapest never selects the most expensive generator.
  const auto max_cost_fg = static_cast<std::size_t>(
      std::max_element(cheap.stats.cost_seconds.begin(),
                       cheap.stats.cost_seconds.end()) -
      cheap.stats.cost_seconds.begin());
  EXPECT_FALSE(cheap.efficient_mask[max_cost_fg]);
}

}  // namespace
}  // namespace willump::core
