#include <gtest/gtest.h>

#include <map>

#include "common/stats.hpp"
#include "core/optimizer.hpp"
#include "models/metrics.hpp"
#include "workloads/credit.hpp"
#include "workloads/music.hpp"
#include "workloads/price.hpp"
#include "workloads/product.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/toxic.hpp"
#include "workloads/tracking.hpp"

namespace willump::workloads {
namespace {

/// Shrunk-size workload factory for tests, keyed by name. Every config gets
/// an explicit seed so a parallel ctest run is reproducible run-to-run.
Workload make_small_uncached(const std::string& name) {
  const SplitSizes sizes{.train = 1200, .valid = 500, .test = 500};
  if (name == "product") {
    ProductConfig c;
    c.seed = 101;
    c.sizes = sizes;
    c.word_tfidf_features = 500;
    c.char_tfidf_features = 800;
    return make_product(c);
  }
  if (name == "toxic") {
    ToxicConfig c;
    c.seed = 202;
    c.sizes = sizes;
    c.word_tfidf_features = 600;
    c.char_tfidf_features = 900;
    return make_toxic(c);
  }
  if (name == "music") {
    MusicConfig c;
    c.seed = 303;
    c.sizes = sizes;
    c.n_users = 800;
    c.n_songs = 600;
    c.n_artists = 150;
    return make_music(c);
  }
  if (name == "credit") {
    CreditConfig c;
    c.seed = 404;
    c.sizes = sizes;
    c.n_clients = 1500;
    return make_credit(c);
  }
  if (name == "price") {
    PriceConfig c;
    c.seed = 505;
    c.sizes = sizes;
    c.name_tfidf_features = 600;
    return make_price(c);
  }
  if (name == "tracking") {
    TrackingConfig c;
    c.seed = 606;
    c.sizes = sizes;
    c.n_ips = 1500;
    return make_tracking(c);
  }
  throw std::invalid_argument("unknown workload " + name);
}

/// Memoized: the parameterized suites below each rebuild their workload;
/// generating all six once per process keeps the binary fast under ctest.
const Workload& make_small(const std::string& name) {
  static std::map<std::string, Workload> cache;
  auto it = cache.find(name);
  if (it == cache.end()) it = cache.emplace(name, make_small_uncached(name)).first;
  return it->second;
}

struct Expectation {
  const char* name;
  std::size_t num_ifvs;
  bool classification;
  bool has_tables;
};

class WorkloadSuite : public ::testing::TestWithParam<Expectation> {};

TEST_P(WorkloadSuite, StructureMatchesPaperTopology) {
  const auto& e = GetParam();
  const auto& wl = make_small(e.name);
  EXPECT_EQ(wl.name, e.name);
  EXPECT_EQ(wl.classification, e.classification);
  EXPECT_EQ(wl.pipeline.classification(), e.classification);
  EXPECT_EQ(wl.tables != nullptr, e.has_tables);

  const auto analysis = core::analyze_ifvs(wl.pipeline.graph);
  EXPECT_EQ(analysis.num_generators(), e.num_ifvs);
}

TEST_P(WorkloadSuite, SplitsAreDisjointSizes) {
  const auto& wl = make_small(GetParam().name);
  EXPECT_EQ(wl.train.inputs.num_rows(), 1200u);
  EXPECT_EQ(wl.valid.inputs.num_rows(), 500u);
  EXPECT_EQ(wl.test.inputs.num_rows(), 500u);
  EXPECT_EQ(wl.train.targets.size(), 1200u);
}

TEST_P(WorkloadSuite, ModelBeatsTrivialBaseline) {
  const auto& e = GetParam();
  const auto& wl = make_small(e.name);
  const auto p =
      core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, {});
  const auto preds = p.predict(wl.test.inputs);

  if (e.classification) {
    // Beat the majority-class baseline.
    double pos = 0.0;
    for (double y : wl.test.targets) pos += y;
    const double majority =
        std::max(pos, static_cast<double>(wl.test.targets.size()) - pos) /
        static_cast<double>(wl.test.targets.size());
    EXPECT_GT(models::accuracy(preds, wl.test.targets), majority + 0.02)
        << e.name;
  } else {
    EXPECT_GT(models::r2(preds, wl.test.targets), 0.3) << e.name;
  }
}

TEST_P(WorkloadSuite, CompiledMatchesInterpreted) {
  const auto& wl = make_small(GetParam().name);
  core::OptimizeOptions interp_opts;
  interp_opts.compile = false;
  const auto interp = core::WillumpOptimizer::optimize(wl.pipeline, wl.train,
                                                       wl.valid, interp_opts);
  const auto compiled =
      core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, {});
  const auto probe = wl.test.inputs.select_rows(
      std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7});
  const auto pi = interp.predict(probe);
  const auto pc = compiled.predict(probe);
  for (std::size_t i = 0; i < pi.size(); ++i) {
    ASSERT_NEAR(pi[i], pc[i], 1e-9) << GetParam().name;
  }
}

TEST_P(WorkloadSuite, QuerySamplerMatchesSchema) {
  const auto& wl = make_small(GetParam().name);
  if (!wl.query_sampler) GTEST_SKIP() << "no query sampler";
  common::Rng rng(1);
  const auto q = wl.query_sampler(64, rng);
  EXPECT_EQ(q.num_rows(), 64u);
  for (const auto& name : wl.test.inputs.names()) {
    EXPECT_TRUE(q.has(name)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadSuite,
    ::testing::Values(Expectation{"product", 3, true, false},
                      Expectation{"toxic", 3, true, false},
                      Expectation{"music", 6, true, true},
                      Expectation{"credit", 4, false, true},
                      Expectation{"price", 5, false, false},
                      Expectation{"tracking", 6, true, true}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(SyntheticParallel, HasEqualCostGenerators) {
  SyntheticParallelConfig cfg;
  cfg.seed = 707;
  cfg.sizes = {.train = 400, .valid = 150, .test = 150};
  const auto wl = make_synthetic_parallel(cfg);
  const auto analysis = core::analyze_ifvs(wl.pipeline.graph);
  EXPECT_EQ(analysis.num_generators(), 4u);
  // All generators share one source; their blocks are identical widths.
  core::CompiledExecutor ex(wl.pipeline.graph, core::analyze_ifvs(wl.pipeline.graph));
  ex.probe_layout(wl.train.inputs.select_rows(std::vector<std::size_t>{0, 1}));
  const auto& a = ex.analysis();
  for (std::size_t f = 1; f < a.num_generators(); ++f) {
    EXPECT_EQ(a.block_cols[f], a.block_cols[0]);
  }
}

TEST(SyntheticParallel, ModelLearns) {
  SyntheticParallelConfig cfg;
  cfg.seed = 707;
  cfg.sizes = {.train = 600, .valid = 200, .test = 200};
  const auto wl = make_synthetic_parallel(cfg);
  const auto p =
      core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, {});
  EXPECT_GT(models::accuracy(p.predict(wl.test.inputs), wl.test.targets), 0.8);
}

TEST(Workloads, MusicZipfSkewsQueries) {
  MusicConfig c;
  c.seed = 303;
  c.sizes = {.train = 1200, .valid = 500, .test = 500};
  c.n_users = 800;
  c.n_songs = 600;
  c.n_artists = 150;
  const auto wl = make_music(c);
  common::Rng rng(7);
  const auto q = wl.query_sampler(2000, rng);
  // Top song id (rank 0) appears far more often than uniform would predict.
  std::size_t top_count = 0;
  for (auto s : q.get("song_id").ints()) {
    if (s == 0) ++top_count;
  }
  EXPECT_GT(top_count, 2000 / 600 * 5);
}

TEST(Workloads, RemoteNetworkDefaults) {
  const auto net = default_remote_network();
  EXPECT_TRUE(net.is_remote());
  EXPECT_GT(net.batch_cost_micros(10), net.rtt_micros);
  EXPECT_DOUBLE_EQ(net.batch_cost_micros(0), 0.0);
}

}  // namespace
}  // namespace willump::workloads
