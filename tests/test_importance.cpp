#include "core/importance.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "models/linear.hpp"
#include "models/metrics.hpp"
#include "models/mlp.hpp"

namespace willump::core {
namespace {

/// Binary problem where feature 0 decides the label and features 1-2 are
/// low-amplitude noise.
data::DenseMatrix make_informative(common::Rng& rng, std::size_t n,
                                   std::vector<double>& y) {
  data::DenseMatrix x(n, 3);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.next_gaussian();
    x(i, 1) = rng.next_gaussian() * 0.05;
    x(i, 2) = rng.next_gaussian() * 0.05;
    y[i] = x(i, 0) > 0.0 ? 1.0 : 0.0;
  }
  return x;
}

/// Accuracy of a fresh copy of `proto` trained on a column subset of `x`.
/// The CI-based criterion of §6.3 turns importance claims into statistics:
/// a feature set is "as good" when its accuracy is within the 95% CI of the
/// full set's, and "worse" when it is not — no hand-tuned margins.
double subset_accuracy(const models::Model& proto, const data::DenseMatrix& x,
                       std::span<const double> y,
                       const std::vector<std::size_t>& cols) {
  data::DenseMatrix sub(x.rows(), cols.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t j = 0; j < cols.size(); ++j) sub(r, j) = x(r, cols[j]);
  }
  auto m = proto.clone_untrained();
  const data::FeatureMatrix fsub(std::move(sub));
  m->fit(fsub, y);
  return models::accuracy(m->predict(fsub), y);
}

TEST(FeatureImportances, LinearModelReportsNativeMeasure) {
  common::Rng rng(11);
  std::vector<double> y;
  data::DenseMatrix xd = make_informative(rng, 1200, y);
  const data::FeatureMatrix x(xd);
  models::LogisticRegression m;
  m.fit(x, y);

  const auto imp = feature_importances(m, x, y);
  // Native path: identical to the model's own |w_i| * mean|x_i| measure.
  EXPECT_EQ(imp, m.feature_importances());
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[2]);

  // The ranking is statistically grounded (CI criterion, not a magic
  // margin): the top-ranked feature alone is as accurate as all three,
  // while the rest without it are significantly worse.
  const double full_acc = subset_accuracy(m, xd, y, {0, 1, 2});
  EXPECT_TRUE(common::accuracy_within_ci95(subset_accuracy(m, xd, y, {0}),
                                           full_acc, y.size()));
  EXPECT_FALSE(common::accuracy_within_ci95(subset_accuracy(m, xd, y, {1, 2}),
                                            full_acc, y.size()));
}

TEST(FeatureImportances, MlpFallsBackToGbdtProxy) {
  common::Rng rng(12);
  std::vector<double> y;
  data::DenseMatrix xd = make_informative(rng, 1200, y);
  const data::FeatureMatrix x(xd);
  models::MlpConfig cfg;
  cfg.classification = true;
  cfg.seed = 5;
  models::Mlp m(cfg);
  m.fit(x, y);

  // The MLP has no native measure; the proxy must still cover every feature
  // and rank the informative one first.
  ASSERT_TRUE(m.feature_importances().empty());
  const auto imp = feature_importances(m, x, y);
  ASSERT_EQ(imp.size(), 3u);
  for (double v : imp) EXPECT_GE(v, 0.0);
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[2]);

  // Same CI-based grounding for the proxy's ranking.
  const double full_acc = subset_accuracy(m, xd, y, {0, 1, 2});
  EXPECT_TRUE(common::accuracy_within_ci95(subset_accuracy(m, xd, y, {0}),
                                           full_acc, y.size()));
  EXPECT_FALSE(common::accuracy_within_ci95(subset_accuracy(m, xd, y, {1, 2}),
                                            full_acc, y.size()));
}

/// Layout-only analysis: three generators of widths 2, 1, 3.
IfvAnalysis layout_321() {
  IfvAnalysis a;
  a.generators.resize(3);
  a.block_cols = {2, 1, 3};
  a.col_begin = {0, 2, 3};
  return a;
}

TEST(IfvImportances, SumsPerFeatureValuesWithinEachBlock) {
  const auto a = layout_321();
  const std::vector<double> per_feature{1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  const auto agg = ifv_importances(a, per_feature);
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_DOUBLE_EQ(agg[0], 3.0);
  EXPECT_DOUBLE_EQ(agg[1], 4.0);
  EXPECT_DOUBLE_EQ(agg[2], 56.0);
}

TEST(IfvImportances, TruncatedFeatureVectorIgnoresMissingColumns) {
  // A per-feature vector shorter than the layout (e.g. a masked run) only
  // contributes the columns it has.
  const auto a = layout_321();
  const std::vector<double> per_feature{1.0, 2.0, 4.0, 8.0};
  const auto agg = ifv_importances(a, per_feature);
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_DOUBLE_EQ(agg[0], 3.0);
  EXPECT_DOUBLE_EQ(agg[1], 4.0);
  EXPECT_DOUBLE_EQ(agg[2], 8.0);
}

}  // namespace
}  // namespace willump::core
