#include "core/ifv_analysis.hpp"

#include <gtest/gtest.h>

#include "ops/concat.hpp"
#include "ops/scale.hpp"
#include "ops/string_ops.hpp"
#include "ops/tfidf.hpp"

namespace willump::core {
namespace {

/// Build the Product-like graph used throughout these tests:
///   title -> stats                 (FG with root = stats)
///   title -> lower -> strip -> word_tfidf   (lower shared)
///   title -> lower -> char_tfidf
///   concat(stats, word_tfidf, char_tfidf)
struct TestGraph {
  Graph g;
  int title, stats, lower, strip, word_tfidf, char_tfidf, concat;
};

std::shared_ptr<ops::TfIdfModel> tiny_tfidf(ops::Analyzer a) {
  ops::TfIdfConfig cfg;
  cfg.analyzer = a;
  cfg.min_df = 1;
  if (a == ops::Analyzer::Char) cfg.ngrams = {2, 2};
  return std::make_shared<ops::TfIdfModel>(
      ops::TfIdfModel::fit({"aa bb", "bb cc", "cc dd"}, cfg));
}

TestGraph make_test_graph() {
  TestGraph t;
  t.title = t.g.add_source("title", data::ColumnType::String);
  t.stats = t.g.add_transform("stats", std::make_shared<ops::StringStatsOp>(),
                              {t.title});
  t.lower =
      t.g.add_transform("lower", std::make_shared<ops::LowercaseOp>(), {t.title});
  t.strip =
      t.g.add_transform("strip", std::make_shared<ops::StripPunctOp>(), {t.lower});
  t.word_tfidf = t.g.add_transform(
      "word", std::make_shared<ops::TfIdfOp>(tiny_tfidf(ops::Analyzer::Word)),
      {t.strip});
  t.char_tfidf = t.g.add_transform(
      "char", std::make_shared<ops::TfIdfOp>(tiny_tfidf(ops::Analyzer::Char)),
      {t.lower});
  t.concat = t.g.add_transform("concat", std::make_shared<ops::ConcatOp>(),
                               {t.stats, t.word_tfidf, t.char_tfidf});
  t.g.set_output(t.concat);
  return t;
}

TEST(IfvAnalysis, FindsGeneratorsInConcatOrder) {
  auto t = make_test_graph();
  const auto a = analyze_ifvs(t.g);
  ASSERT_EQ(a.num_generators(), 3u);
  EXPECT_EQ(a.generators[0].root, t.stats);
  EXPECT_EQ(a.generators[1].root, t.word_tfidf);
  EXPECT_EQ(a.generators[2].root, t.char_tfidf);
  EXPECT_EQ(a.concat_node, t.concat);
}

TEST(IfvAnalysis, Rule3SharedAncestorIsPreprocessing) {
  auto t = make_test_graph();
  const auto a = analyze_ifvs(t.g);
  // `lower` feeds both tfidf roots -> preprocessing (rule 3).
  ASSERT_EQ(a.preprocessing.size(), 1u);
  EXPECT_EQ(a.preprocessing[0], t.lower);
}

TEST(IfvAnalysis, Rule2ExclusiveAncestorJoinsGenerator) {
  auto t = make_test_graph();
  const auto a = analyze_ifvs(t.g);
  // `strip` feeds only the word-tfidf root -> part of that generator.
  const auto& fg = a.generators[1];
  ASSERT_EQ(fg.nodes.size(), 2u);
  EXPECT_EQ(fg.nodes[0], t.strip);
  EXPECT_EQ(fg.nodes[1], t.word_tfidf);
}

TEST(IfvAnalysis, KeySourcesIncludeSharedSources) {
  auto t = make_test_graph();
  const auto a = analyze_ifvs(t.g);
  for (const auto& fg : a.generators) {
    ASSERT_EQ(fg.key_sources.size(), 1u);
    EXPECT_EQ(fg.key_sources[0], t.title);
  }
}

TEST(IfvAnalysis, PostChainCollectsCommutativeOps) {
  auto t = make_test_graph();
  // Add scale(concat) -> output: commutative chain above the concat.
  const int scaled = t.g.add_transform(
      "scale",
      std::make_shared<ops::ScaleOp>(std::vector<double>(10, 1.0),
                                     std::vector<double>(10, 0.0)),
      {t.concat});
  t.g.set_output(scaled);
  const auto a = analyze_ifvs(t.g);
  ASSERT_EQ(a.post_chain.size(), 1u);
  EXPECT_EQ(a.post_chain[0], scaled);
  EXPECT_EQ(a.num_generators(), 3u);
}

TEST(IfvAnalysis, BlockChainPerGeneratorScale) {
  Graph g;
  const int x = g.add_source("x", data::ColumnType::String);
  const int stats =
      g.add_transform("stats", std::make_shared<ops::StringStatsOp>(), {x});
  // Per-block commutative scale between the root and the concat.
  const int block_scale = g.add_transform(
      "bscale",
      std::make_shared<ops::ScaleOp>(std::vector<double>(6, 2.0),
                                     std::vector<double>(6, 0.0)),
      {stats});
  const int kw = g.add_transform(
      "kw", std::make_shared<ops::KeywordCountOp>(std::vector<std::string>{"a"}),
      {x});
  const int cat =
      g.add_transform("concat", std::make_shared<ops::ConcatOp>(), {block_scale, kw});
  g.set_output(cat);

  const auto a = analyze_ifvs(g);
  ASSERT_EQ(a.num_generators(), 2u);
  EXPECT_EQ(a.generators[0].root, stats);
  ASSERT_EQ(a.generators[0].block_chain.size(), 1u);
  EXPECT_EQ(a.generators[0].block_chain[0], block_scale);
  EXPECT_EQ(a.generators[0].output_node, block_scale);
  EXPECT_EQ(a.generators[1].output_node, kw);
}

TEST(IfvAnalysis, NonCommutativeOutputIsSingleGenerator) {
  Graph g;
  const int x = g.add_source("x", data::ColumnType::String);
  const int stats =
      g.add_transform("stats", std::make_shared<ops::StringStatsOp>(), {x});
  g.set_output(stats);
  const auto a = analyze_ifvs(g);
  ASSERT_EQ(a.num_generators(), 1u);
  EXPECT_EQ(a.generators[0].root, stats);
  EXPECT_EQ(a.concat_node, -1);
  EXPECT_TRUE(a.post_chain.empty());
}

TEST(IfvAnalysis, ColumnsOfMask) {
  IfvAnalysis a;
  a.generators.resize(3);
  a.block_cols = {2, 3, 4};
  a.col_begin = {0, 2, 5};
  EXPECT_EQ(a.total_cols(), 9u);
  const auto cols = a.columns_of({true, false, true});
  ASSERT_EQ(cols.size(), 6u);
  EXPECT_EQ(cols[0], 0u);
  EXPECT_EQ(cols[1], 1u);
  EXPECT_EQ(cols[2], 5u);
  EXPECT_EQ(cols[5], 8u);
}

TEST(IfvAnalysis, FigureOneShape) {
  // The paper's Figure 1: three lookups, concat, model. No preprocessing.
  Graph g;
  const int user = g.add_source("user", data::ColumnType::String);
  const int song = g.add_source("song", data::ColumnType::String);
  const int genre = g.add_source("genre", data::ColumnType::String);
  // Stand-in feature ops (string stats instead of DB lookups).
  const int uf = g.add_transform("uf", std::make_shared<ops::StringStatsOp>(), {user});
  const int sf = g.add_transform("sf", std::make_shared<ops::StringStatsOp>(), {song});
  const int gf = g.add_transform("gf", std::make_shared<ops::StringStatsOp>(), {genre});
  const int cat = g.add_transform("cat", std::make_shared<ops::ConcatOp>(), {uf, sf, gf});
  g.set_output(cat);

  const auto a = analyze_ifvs(g);
  EXPECT_EQ(a.num_generators(), 3u);
  EXPECT_TRUE(a.preprocessing.empty());
  for (const auto& fg : a.generators) {
    EXPECT_EQ(fg.nodes.size(), 1u);
    EXPECT_EQ(fg.exclusive_sources.size(), 1u);
  }
}

}  // namespace
}  // namespace willump::core
