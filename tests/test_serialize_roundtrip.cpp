// Roundtrip-fidelity tier: for every workload family, the pipeline loaded
// from an artifact must make BIT-IDENTICAL predictions to the in-memory
// pipeline it was saved from, on every execution path the paper evaluates —
// batch (Fig. 5), pointwise (Fig. 6), cascade-on (§4.2), full-model
// reference, and top-K (§4.3). Doubles are compared with EXPECT_EQ (exact
// bits): the artifact stores IEEE-754 bit patterns and the loaded graph,
// models, and thresholds are the same numbers, so nothing may drift.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/optimizer.hpp"
#include "serialize/artifact.hpp"
#include "serving/server.hpp"
#include "test_support.hpp"
#include "workloads/music.hpp"
#include "workloads/price.hpp"

namespace willump {
namespace {

using core::OptimizedPipeline;
using core::OptimizeOptions;
using core::WillumpOptimizer;

/// Round-trip through bytes (no filesystem dependence in the fidelity
/// assertions themselves; the file path is covered by CheckRegistryColdStart
/// and the fixture cache).
OptimizedPipeline reload(const OptimizedPipeline& p) {
  return serialize::pipeline_from_bytes(serialize::pipeline_to_bytes(p));
}

void expect_bit_identical(const OptimizedPipeline& a, const OptimizedPipeline& b,
                          const data::Batch& held_out) {
  // Batch path.
  EXPECT_EQ(a.predict(held_out), b.predict(held_out));
  // Full-model (no approximation) path.
  EXPECT_EQ(a.predict_full(held_out), b.predict_full(held_out));
  // Pointwise path, first rows.
  const std::size_t n = std::min<std::size_t>(held_out.num_rows(), 16);
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_EQ(a.predict_one(held_out.row(r)), b.predict_one(held_out.row(r)));
  }
}

TEST(SerializeRoundtrip, ToxicCascadePipeline) {
  const auto& wl = testing::shared_toxic_optimized().wl;
  OptimizeOptions opts;
  opts.cascades = true;
  const auto trained =
      WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  ASSERT_TRUE(trained.cascades_enabled());
  const auto loaded = reload(trained);
  ASSERT_TRUE(loaded.cascades_enabled());
  EXPECT_EQ(loaded.cascade().threshold, trained.cascade().threshold);
  EXPECT_EQ(loaded.cascade().efficient_mask, trained.cascade().efficient_mask);
  expect_bit_identical(trained, loaded, wl.test.inputs);
  // The cascade actually routes on both sides (not a degenerate mask).
  loaded.predict(wl.test.inputs);
  EXPECT_GT(loaded.run_stats().short_circuited, 0u);
}

TEST(SerializeRoundtrip, ToxicDefaultPipelineFromSharedFixture) {
  // The shared fixture itself may have been deserialized from the fixture
  // cache; re-serializing it must reproduce the same bytes-level behavior.
  auto& f = testing::shared_toxic_optimized();
  const auto loaded = reload(f.pipeline);
  expect_bit_identical(f.pipeline, loaded, f.wl.test.inputs);
}

TEST(SerializeRoundtrip, ProductCascadePipeline) {
  const auto& wl = testing::shared_product_wl();
  OptimizeOptions opts;
  opts.cascades = true;
  const auto trained =
      WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  const auto loaded = reload(trained);
  expect_bit_identical(trained, loaded, wl.test.inputs);
}

TEST(SerializeRoundtrip, CreditTopKPipelineWithRemoteTables) {
  workloads::Workload wl = testing::small_credit_remote();
  OptimizeOptions opts;
  opts.topk_filter = true;
  const auto trained =
      WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  const auto loaded = reload(trained);
  expect_bit_identical(trained, loaded, wl.test.inputs);
  // Top-K path: identical candidate subsets and identical ranking.
  EXPECT_EQ(trained.top_k(wl.test.inputs, 20), loaded.top_k(wl.test.inputs, 20));
  EXPECT_EQ(trained.topk_stats().subset_size, loaded.topk_stats().subset_size);
  // The simulated-remote network model travels with the lookup ops.
  EXPECT_EQ(loaded.topk_config().ck, trained.topk_config().ck);
}

TEST(SerializeRoundtrip, PriceMlpPipeline) {
  workloads::PriceConfig cfg;
  cfg.sizes = {.train = 900, .valid = 400, .test = 400};
  cfg.name_tfidf_features = 300;
  const auto wl = workloads::make_price(cfg);
  const auto trained =
      WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, {});
  const auto loaded = reload(trained);
  expect_bit_identical(trained, loaded, wl.test.inputs);
}

TEST(SerializeRoundtrip, MusicLookupPipeline) {
  workloads::MusicConfig cfg;
  cfg.sizes = {.train = 1000, .valid = 400, .test = 400};
  cfg.n_users = 500;
  cfg.n_songs = 400;
  cfg.n_artists = 120;
  const auto wl = workloads::make_music(cfg);
  OptimizeOptions opts;
  opts.cascades = true;
  const auto trained =
      WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  const auto loaded = reload(trained);
  expect_bit_identical(trained, loaded, wl.test.inputs);
}

TEST(SerializeRoundtrip, FeatureCacheAndTopKConfigSurvive) {
  const auto& wl = testing::shared_toxic_optimized().wl;
  OptimizeOptions opts;
  opts.feature_cache = true;
  opts.cache_capacity = 128;
  opts.topk.ck = 7.0;
  opts.topk.min_subset_frac = 0.11;
  const auto trained =
      WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
  const auto loaded = reload(trained);
  ASSERT_NE(loaded.cache(), nullptr);
  EXPECT_EQ(loaded.cache_capacity_per_ifv(), 128u);
  EXPECT_EQ(loaded.topk_config().ck, 7.0);
  EXPECT_EQ(loaded.topk_config().min_subset_frac, 0.11);
  expect_bit_identical(trained, loaded, wl.test.inputs);
}

TEST(SerializeRoundtrip, RegistryColdStartsFromArtifactsAlone) {
  // The Table 6 deployment shape: a multi-model registry whose every
  // pipeline arrives as a loadable artifact, no in-process training.
  auto& toxic = testing::shared_toxic_optimized();
  workloads::Workload credit = testing::small_credit_remote();
  const auto credit_trained = core::WillumpOptimizer::optimize(
      credit.pipeline, credit.train, credit.valid, {});

  const std::string dir = ::testing::TempDir();
  const std::string toxic_path = dir + "/toxic.wlmp";
  const std::string credit_path = dir + "/credit.wlmp";
  serialize::save_pipeline(toxic.pipeline, toxic_path);
  serialize::save_pipeline(credit_trained, credit_path);

  serving::Server server(serving::ServerConfig{.num_workers = 2});
  server.load_model("toxic", toxic_path);
  server.load_model("credit", credit_path);

  const auto toxic_batch = toxic.wl.test.inputs.select_rows(
      std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7});
  const auto credit_batch = credit.test.inputs.select_rows(
      std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(server.predict_rows("toxic", toxic_batch),
            toxic.pipeline.predict(toxic_batch));
  EXPECT_EQ(server.predict_rows("credit", credit_batch),
            credit_trained.predict(credit_batch));
  server.shutdown();
}

TEST(SerializeRoundtrip, SwapModelReplacesServedPredictions) {
  auto& toxic = testing::shared_toxic_optimized();
  // A differently-optimized pipeline of the same workload: cascades on, so
  // predictions differ for short-circuited rows.
  core::OptimizeOptions opts;
  opts.cascades = true;
  const auto cascaded = core::WillumpOptimizer::optimize(
      toxic.wl.pipeline, toxic.wl.train, toxic.wl.valid, opts);

  const std::string path = ::testing::TempDir() + "/toxic_swap.wlmp";
  serialize::save_pipeline(cascaded, path);

  serving::Server server(serving::ServerConfig{.num_workers = 1});
  server.register_model("m", &toxic.pipeline);
  const data::Batch row = toxic.wl.test.inputs.row(0);
  EXPECT_EQ(server.submit("m", row).get(), toxic.pipeline.predict_one(row));

  server.swap_model("m", path);
  EXPECT_EQ(server.submit("m", row).get(), cascaded.predict_one(row));
  server.shutdown();
}

TEST(SerializeRoundtrip, V3ArtifactsLoadBitIdenticallyUnderV4Reader) {
  // Backward compatibility: a v3 (pre-codec, fixed-width) artifact of the
  // same pipeline must load into a pipeline that predicts bit-identically
  // to both the in-memory original and its v4 re-serialization.
  auto& f = testing::shared_toxic_optimized();
  const auto v3_bytes = serialize::pipeline_to_bytes(f.pipeline, 3);
  const auto v4_bytes = serialize::pipeline_to_bytes(f.pipeline);
  ASSERT_NE(v3_bytes, v4_bytes);
  // The codecs actually engage: TF-IDF front-coding + varints shrink toxic.
  EXPECT_LT(v4_bytes.size(), v3_bytes.size());

  const auto from_v3 = serialize::pipeline_from_bytes(v3_bytes);
  const auto from_v4 = serialize::pipeline_from_bytes(v4_bytes);
  expect_bit_identical(f.pipeline, from_v3, f.wl.test.inputs);
  expect_bit_identical(from_v3, from_v4, f.wl.test.inputs);

  // Re-serializing the v3 load at v3 reproduces the bytes exactly: the
  // legacy writer path is stable, so codec kill-switch artifacts stay
  // byte-for-byte reproducible.
  EXPECT_EQ(serialize::pipeline_to_bytes(from_v3, 3), v3_bytes);
}

TEST(SerializeRoundtrip, SplitBundleRoundTripsRawSplits) {
  workloads::ToxicConfig cfg;
  cfg.sizes = {.train = 120, .valid = 50, .test = 50};
  const auto wl = workloads::make_toxic(cfg);

  serialize::SplitBundle b;
  b.workload = wl.name;
  b.classification = wl.classification;
  b.train = wl.train;
  b.valid = wl.valid;
  b.test = wl.test;
  const auto bytes = serialize::split_bundle_to_bytes(b);
  const auto loaded = serialize::split_bundle_from_bytes(bytes);

  EXPECT_EQ(loaded.workload, "toxic");
  EXPECT_TRUE(loaded.classification);
  EXPECT_EQ(loaded.train.targets, wl.train.targets);
  EXPECT_EQ(loaded.valid.targets, wl.valid.targets);
  EXPECT_EQ(loaded.test.targets, wl.test.targets);
  EXPECT_EQ(loaded.train.inputs.get("comment").strings(),
            wl.train.inputs.get("comment").strings());
  EXPECT_EQ(loaded.test.inputs.get("comment").strings(),
            wl.test.inputs.get("comment").strings());
}

TEST(SerializeRoundtrip, WorkloadRebuiltFromCachedSplitsIsBitIdentical) {
  // The fixture split cache's contract: rebuilding the workload from
  // round-tripped raw splits re-fits the very same pipeline, so optimized
  // predictions match the freshly generated workload bit for bit.
  workloads::ToxicConfig cfg;
  cfg.sizes = {.train = 150, .valid = 60, .test = 60};
  const auto fresh = workloads::make_toxic(cfg);

  serialize::SplitBundle b{fresh.name, fresh.classification, fresh.train,
                           fresh.valid, fresh.test};
  const auto loaded = serialize::split_bundle_from_bytes(
      serialize::split_bundle_to_bytes(b));
  const auto rebuilt = workloads::make_toxic_from_splits(
      cfg, loaded.train, loaded.valid, loaded.test);

  const auto p_fresh =
      WillumpOptimizer::optimize(fresh.pipeline, fresh.train, fresh.valid, {});
  const auto p_rebuilt = WillumpOptimizer::optimize(
      rebuilt.pipeline, rebuilt.train, rebuilt.valid, {});
  EXPECT_EQ(p_fresh.predict(fresh.test.inputs),
            p_rebuilt.predict(rebuilt.test.inputs));
}

}  // namespace
}  // namespace willump
