#include "common/string_util.hpp"

#include <gtest/gtest.h>

#include "common/hash.hpp"

namespace willump::common {
namespace {

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("Hello World"), "hello world");
  EXPECT_EQ(to_lower("ABC123!"), "abc123!");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringUtil, SplitWs) {
  const auto parts = split_ws("  foo  bar\tbaz \n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, StripPunct) {
  EXPECT_EQ(strip_punct("a,b.c!"), "a b c ");
  EXPECT_EQ(strip_punct("no punct"), "no punct");
}

TEST(StringUtil, CountOccurrences) {
  EXPECT_EQ(count_occurrences("abcabcab", "abc"), 2u);
  EXPECT_EQ(count_occurrences("aaaa", "aa"), 2u);  // non-overlapping
  EXPECT_EQ(count_occurrences("xyz", ""), 0u);
  EXPECT_EQ(count_occurrences("", "x"), 0u);
}

TEST(StringUtil, UpperRatio) {
  EXPECT_DOUBLE_EQ(upper_ratio("ABcd"), 0.5);
  EXPECT_DOUBLE_EQ(upper_ratio("1234"), 0.0);
  EXPECT_DOUBLE_EQ(upper_ratio("ALLCAPS"), 1.0);
}

TEST(StringUtil, DigitRatio) {
  EXPECT_DOUBLE_EQ(digit_ratio("a1b2"), 0.5);
  EXPECT_DOUBLE_EQ(digit_ratio(""), 0.0);
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Hash, Fnv1aStableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(Hash, CombineOrderMatters) {
  const auto a = fnv1a("a");
  const auto b = fnv1a("b");
  EXPECT_NE(hash_combine(a, b), hash_combine(b, a));
}

TEST(Hash, U64Mixes) {
  EXPECT_NE(hash_u64(1), hash_u64(2));
  EXPECT_NE(hash_u64(0), 0u);
}

}  // namespace
}  // namespace willump::common
