// Building a custom pipeline against the public API from scratch (no
// prebuilt workload): a tiny support-ticket triage model mixing a cheap
// keyword IFV with an expensive TF-IDF IFV, then letting Willump derive the
// IFV structure, measure costs, and deploy cascades.
//
// Demonstrates: the Graph builder, TF-IDF fitting, the IFV analysis report,
// and the cascade's efficient-set / threshold introspection.

#include <cstdio>

#include "common/rng.hpp"
#include "core/optimizer.hpp"
#include "models/linear.hpp"
#include "models/metrics.hpp"
#include "ops/concat.hpp"
#include "ops/string_ops.hpp"
#include "ops/tfidf.hpp"
#include "workloads/text_gen.hpp"

using namespace willump;

int main() {
  std::printf("== Custom pipeline: support-ticket triage ==\n");

  // --- Synthesize labeled tickets: "urgent" tickets usually contain alarm
  // words; some are subtle and need full text features.
  common::Rng rng(321);
  const auto vocab = workloads::TextGen::make_vocab(300, 0xE1);
  const auto alarm_words = workloads::TextGen::make_vocab(8, 0xE2);
  const auto subtle_words = workloads::TextGen::make_vocab(15, 0xE3);

  data::StringColumn tickets;
  std::vector<double> urgent;
  for (int i = 0; i < 4000; ++i) {
    const bool is_urgent = rng.next_bernoulli(0.35);
    std::string text = workloads::TextGen::make_doc(vocab, 10 + rng.next_below(15), rng);
    if (is_urgent) {
      if (rng.next_bernoulli(0.7)) {
        text += " " + workloads::TextGen::pick(alarm_words, rng);
      } else {
        text += " " + workloads::TextGen::pick(subtle_words, rng);
      }
    }
    tickets.push_back(std::move(text));
    urgent.push_back(is_urgent ? 1.0 : 0.0);
  }

  // --- Fit the vectorizer on the training slice.
  data::StringColumn corpus(tickets.begin(), tickets.begin() + 2500);
  ops::TfIdfConfig tf_cfg;
  tf_cfg.max_features = 2000;
  auto tfidf = std::make_shared<ops::TfIdfModel>(ops::TfIdfModel::fit(corpus, tf_cfg));

  // --- Build the transformation graph.
  core::Pipeline pipeline;
  core::Graph& g = pipeline.graph;
  const int text = g.add_source("text", data::ColumnType::String);
  const int alarms = g.add_transform(
      "alarm_count", std::make_shared<ops::KeywordCountOp>(alarm_words), {text});
  const int words =
      g.add_transform("tfidf", std::make_shared<ops::TfIdfOp>(tfidf), {text});
  const int concat =
      g.add_transform("concat", std::make_shared<ops::ConcatOp>(), {alarms, words});
  g.set_output(concat);
  pipeline.model_proto = std::make_shared<models::LogisticRegression>();

  // --- Inspect what Willump's dataflow analysis sees.
  const auto analysis = core::analyze_ifvs(g);
  std::printf("IFV analysis: %zu independent feature vectors, %zu preprocessing "
              "nodes\n",
              analysis.num_generators(), analysis.preprocessing.size());
  for (const auto& fg : analysis.generators) {
    std::printf("  generator rooted at node %d (%s), %zu nodes\n", fg.root,
                g.node(fg.root).name.c_str(), fg.nodes.size());
  }

  // --- Split, optimize with cascades, evaluate.
  data::Batch all;
  all.add("text", data::Column(std::move(tickets)));
  auto take = [&](std::size_t b, std::size_t e) {
    std::vector<std::size_t> idx;
    for (std::size_t i = b; i < e; ++i) idx.push_back(i);
    core::LabeledData d;
    d.inputs = all.select_rows(idx);
    d.targets.assign(urgent.begin() + static_cast<std::ptrdiff_t>(b),
                     urgent.begin() + static_cast<std::ptrdiff_t>(e));
    return d;
  };
  const auto train = take(0, 2500), valid = take(2500, 3200), test = take(3200, 4000);

  core::OptimizeOptions opts;
  opts.cascades = true;
  const auto optimized = core::WillumpOptimizer::optimize(pipeline, train, valid, opts);

  const auto preds = optimized.predict(test.inputs);
  std::printf("\ntest accuracy: %.4f (cascade threshold %.1f, %.0f%% of "
              "tickets triaged by the keyword model alone)\n",
              models::accuracy(preds, test.targets),
              optimized.cascade().threshold,
              100.0 * optimized.run_stats().short_circuit_rate());
  return 0;
}
