// Low-latency serving against a remote feature store (the paper's Table 2/3
// scenario): a stream of example-at-a-time ad-click queries whose per-entity
// features live behind a simulated network.
//
// Demonstrates: feature-level caching (one LRU per independent feature
// vector, §4.5) versus Clipper-style end-to-end prediction caching, and how
// cascades additionally remove remote fetches for easy inputs.

#include <cstdio>

#include "common/timer.hpp"
#include "core/optimizer.hpp"
#include "serving/e2e_cache.hpp"
#include "workloads/tracking.hpp"

using namespace willump;

namespace {

struct RunResult {
  double mean_latency_ms;
  std::uint64_t remote_keys;
};

RunResult serve_stream(const workloads::Workload& wl,
                       const core::OptimizedPipeline& p,
                       const std::vector<data::Batch>& stream, bool e2e) {
  wl.tables->reset_stats();
  serving::EndToEndCache cache(0);
  common::Timer t;
  for (const auto& q : stream) {
    if (e2e) {
      if (auto hit = cache.get(q)) continue;
      cache.put(q, p.predict_one(q));
    } else {
      (void)p.predict_one(q);
    }
  }
  std::uint64_t keys = 0;
  for (const auto& c : wl.tables->clients()) keys += c->stats().keys_fetched.load();
  return {t.elapsed_seconds() * 1e3 / static_cast<double>(stream.size()), keys};
}

}  // namespace

int main() {
  std::printf("== Remote feature-store serving with feature-level caching ==\n");

  workloads::Workload wl = workloads::make_tracking({});
  wl.tables->set_network(workloads::default_remote_network());

  common::Rng rng(7);
  std::vector<data::Batch> stream;
  const auto batch = wl.query_sampler(2500, rng);
  for (std::size_t i = 0; i < batch.num_rows(); ++i) stream.push_back(batch.row(i));

  struct Config {
    const char* label;
    bool e2e, feature_cache, cascades;
  };
  const Config configs[] = {
      {"no caching", false, false, false},
      {"end-to-end prediction cache", true, false, false},
      {"feature-level cache", false, true, false},
      {"feature cache + cascades", false, true, true},
  };

  std::printf("%-32s %12s %14s\n", "configuration", "latency(ms)", "remote keys");
  std::uint64_t baseline_keys = 0;
  for (const auto& cfg : configs) {
    core::OptimizeOptions opts;
    opts.feature_cache = cfg.feature_cache;
    opts.cascades = cfg.cascades;
    const auto p =
        core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);
    const auto r = serve_stream(wl, p, stream, cfg.e2e);
    if (baseline_keys == 0) baseline_keys = r.remote_keys;
    std::printf("%-32s %12.3f %10llu (-%2.0f%%)\n", cfg.label, r.mean_latency_ms,
                static_cast<unsigned long long>(r.remote_keys),
                100.0 * (1.0 - static_cast<double>(r.remote_keys) /
                                   static_cast<double>(baseline_keys)));
  }

  std::printf(
      "\nFeature-level caching keys each IFV on its own sources, so repeated\n"
      "entities (hot IPs, popular apps) hit even when the full query tuple is\n"
      "new - which is why it beats end-to-end caching (paper Table 2).\n");
  return 0;
}
