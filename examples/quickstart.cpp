// Quickstart: build a small ML inference pipeline, optimize it with Willump,
// and compare the unoptimized ("Python"), compiled, and cascaded versions.
//
// The pipeline is a miniature toxic-comment classifier: a cheap curse-word
// counter IFV plus an expensive char-TF-IDF IFV feeding a logistic model —
// the paper's §1 motivating example.

#include <cstdio>

#include "common/timer.hpp"
#include "core/optimizer.hpp"
#include "models/metrics.hpp"
#include "workloads/toxic.hpp"

using namespace willump;

int main() {
  std::printf("== Willump quickstart ==\n");

  // 1. A user pipeline: transformation graph + model prototype.
  workloads::ToxicConfig cfg;
  cfg.sizes = {.train = 2000, .valid = 800, .test = 800};
  workloads::Workload wl = workloads::make_toxic(cfg);
  std::printf("pipeline: %s (%zu graph nodes)\n", wl.name.c_str(),
              wl.pipeline.graph.size());

  // 2. Optimize three ways.
  core::OptimizeOptions python_opts;
  python_opts.compile = false;
  const auto python = core::WillumpOptimizer::optimize(wl.pipeline, wl.train,
                                                       wl.valid, python_opts);

  core::OptimizeOptions compiled_opts;  // compile only
  const auto compiled = core::WillumpOptimizer::optimize(wl.pipeline, wl.train,
                                                         wl.valid, compiled_opts);

  core::OptimizeOptions cascade_opts;
  cascade_opts.cascades = true;
  cascade_opts.cascade_cfg.accuracy_target = 0.001;
  const auto cascaded = core::WillumpOptimizer::optimize(wl.pipeline, wl.train,
                                                         wl.valid, cascade_opts);

  // 3. Compare throughput and accuracy on the test set.
  auto bench = [&](const char* name, const core::OptimizedPipeline& p) {
    common::Timer t;
    const auto preds = p.predict(wl.test.inputs);
    const double secs = t.elapsed_seconds();
    const double acc = models::accuracy(preds, wl.test.targets);
    std::printf("%-22s %8.0f rows/s   accuracy %.4f\n", name,
                static_cast<double>(wl.test.inputs.num_rows()) / secs, acc);
  };
  bench("python (interpreted)", python);
  bench("willump compiled", compiled);
  bench("willump + cascades", cascaded);

  if (cascaded.cascades_enabled()) {
    std::printf("cascade: threshold=%.1f, %zu/%zu IFVs efficient, %.0f%% "
                "short-circuited\n",
                cascaded.cascade().threshold,
                std::count(cascaded.cascade().efficient_mask.begin(),
                           cascaded.cascade().efficient_mask.end(), true),
                cascaded.executor().analysis().num_generators(),
                100.0 * cascaded.run_stats().short_circuit_rate());
  } else {
    std::printf("cascade: disabled (no efficient IFV subset found)\n");
  }
  return 0;
}
