// Top-K music recommendation (the paper's Figure 1 / §4.3 scenario): rank
// the 10 songs a user is most likely to enjoy out of a large candidate
// batch, with feature tables on a (simulated) remote store.
//
// Demonstrates: the automatic top-K filter model — a cheap approximate
// pipeline scores every candidate, the full pipeline re-ranks only the
// top-scoring subset — and how little accuracy the approximation costs.

#include <cstdio>

#include "common/timer.hpp"
#include "core/optimizer.hpp"
#include "models/metrics.hpp"
#include "workloads/music.hpp"

using namespace willump;

int main() {
  std::printf("== Top-K music recommendation ==\n");

  workloads::Workload wl = workloads::make_music({});
  // Store the feature tables behind a simulated same-datacenter network.
  wl.tables->set_network(workloads::default_remote_network());

  // Optimize with the automatic top-K filter model (§4.3).
  core::OptimizeOptions opts;
  opts.topk_filter = true;
  opts.topk.ck = 10.0;            // subset = max(ck*K, 5% of batch)
  opts.topk.min_subset_frac = 0.05;
  const auto pipeline =
      core::WillumpOptimizer::optimize(wl.pipeline, wl.train, wl.valid, opts);

  // A large candidate batch drawn from the serving distribution.
  common::Rng rng(2024);
  const data::Batch candidates = wl.query_sampler(6000, rng);
  constexpr std::size_t kK = 10;

  common::Timer t_exact;
  const auto full_scores = pipeline.predict_full(candidates);
  const auto exact = models::top_k_indices(full_scores, kK);
  const double exact_s = t_exact.elapsed_seconds();

  common::Timer t_filtered;
  const auto approx = pipeline.top_k(candidates, kK);
  const double filtered_s = t_filtered.elapsed_seconds();

  std::printf("exact top-%zu:    %.1f ms\n", kK, exact_s * 1e3);
  std::printf("filtered top-%zu: %.1f ms (%.1fx faster; subset %zu of %zu)\n",
              kK, filtered_s * 1e3, exact_s / filtered_s,
              pipeline.topk_stats().subset_size, candidates.num_rows());
  std::printf("precision vs exact: %.2f\n",
              models::precision_at_k(approx, exact));

  std::printf("\nrank  song_id  P(like)\n");
  for (std::size_t i = 0; i < approx.size(); ++i) {
    std::printf("%4zu  %7lld  %.4f\n", i + 1,
                static_cast<long long>(candidates.get("song_id").ints()[approx[i]]),
                full_scores[approx[i]]);
  }
  return 0;
}
